// Equivalence of the optimized distance kernels with their reference
// implementations (distance/string_distances.h): Myers bit-parallel /
// banded Levenshtein, allocation-free Jaro, and the token-id set
// distances must return values identical to the straightforward code on
// arbitrary byte strings — including UTF-8 multi-byte sequences, empty
// strings, and strings past the 64-char bit-parallel limit.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "distance/string_distances.h"
#include "distance/token_distances.h"
#include "eval/value_store.h"

namespace genlink {
namespace {

// Byte soup spanning ASCII letters/digits/punctuation, whitespace and
// UTF-8 fragments (both well-formed sequences and lone continuation
// bytes — the kernels operate on raw bytes and must not care).
std::string RandomBytes(size_t length, Rng& rng) {
  static const std::vector<std::string> kAtoms = {
      "a", "b", "c", "e", "z", "A", "Z", "0", "9", " ", "\t", ".", "-",
      "'", "(", ")", "/", "_", ",", "\xC3\xA9" /* é */, "\xC3\xBC" /* ü */,
      "\xE2\x82\xAC" /* € */, "\xF0\x9F\x98\x80" /* 😀 */, "\x80", "\xFF"};
  std::string out;
  out.reserve(length + 4);
  while (out.size() < length) out += rng.Choice(kAtoms);
  return out;
}

// Length buckets exercising every kernel path: empty, short (Myers +
// Jaro bit masks), straddling 64, and long (DP / byte-flag fallbacks).
size_t RandomLength(Rng& rng) {
  switch (rng.PickIndex(8)) {
    case 0: return 0;
    case 1: return rng.PickIndex(4);
    case 2: return 1 + rng.PickIndex(16);
    case 3: return 48 + rng.PickIndex(20);   // straddles 64
    case 4: return 63 + rng.PickIndex(4);    // exactly around the limit
    case 5: return 65 + rng.PickIndex(40);
    case 6: return 128 + rng.PickIndex(128); // both sides > 64
    default: return 1 + rng.PickIndex(40);
  }
}

TEST(DistanceKernelsTest, LevenshteinMatchesReferenceOn10kRandomPairs) {
  Rng rng(20260730);
  for (int trial = 0; trial < 10000; ++trial) {
    std::string a = RandomBytes(RandomLength(rng), rng);
    std::string b = RandomBytes(RandomLength(rng), rng);
    ASSERT_EQ(LevenshteinEditDistance(a, b),
              LevenshteinEditDistanceReference(a, b))
        << "a='" << a << "' b='" << b << "'";
  }
}

TEST(DistanceKernelsTest, BoundedLevenshteinExactUpToBound) {
  Rng rng(7);
  for (int trial = 0; trial < 10000; ++trial) {
    std::string a = RandomBytes(RandomLength(rng), rng);
    std::string b = RandomBytes(RandomLength(rng), rng);
    const int exact = LevenshteinEditDistanceReference(a, b);
    const int bound = static_cast<int>(rng.PickIndex(12));
    const int bounded = BoundedLevenshteinEditDistance(a, b, bound);
    if (exact <= bound) {
      ASSERT_EQ(bounded, exact) << "a='" << a << "' b='" << b << "'";
    } else {
      ASSERT_GT(bounded, bound) << "a='" << a << "' b='" << b << "'";
    }
  }
}

TEST(DistanceKernelsTest, JaroMatchesReferenceOn10kRandomPairs) {
  Rng rng(99);
  for (int trial = 0; trial < 10000; ++trial) {
    std::string a = RandomBytes(RandomLength(rng), rng);
    std::string b = RandomBytes(RandomLength(rng), rng);
    // Bit-for-bit: both paths run the identical match/transposition
    // scan, only the flag storage differs.
    ASSERT_EQ(JaroSimilarity(a, b), JaroSimilarityReference(a, b))
        << "a='" << a << "' b='" << b << "'";
  }
}

TEST(DistanceKernelsTest, KnownValuesStillHold) {
  EXPECT_EQ(LevenshteinEditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinEditDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinEditDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinEditDistance("abc", "abc"), 0);
  EXPECT_EQ(BoundedLevenshteinEditDistance("kitten", "sitting", 2), 3);
  EXPECT_EQ(BoundedLevenshteinEditDistance("kitten", "sitting", 3), 3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "abc"), 1.0);
}

// The >64-char DP fallback boundary: identical strings of length 65,
// and a single edit at each end.
TEST(DistanceKernelsTest, SixtyFiveCharBoundary) {
  std::string long_a(65, 'x');
  std::string long_b = long_a;
  EXPECT_EQ(LevenshteinEditDistance(long_a, long_b), 0);
  long_b[0] = 'y';
  EXPECT_EQ(LevenshteinEditDistance(long_a, long_b), 1);
  long_b.back() = 'z';
  EXPECT_EQ(LevenshteinEditDistance(long_a, long_b), 2);
  EXPECT_EQ(LevenshteinEditDistanceReference(long_a, long_b), 2);
}

// ---------------------------------------------------- token-id kernels

// Interns two random multisets of tokens into a pool and checks the
// TokenIdDistance of each set measure against the ValueSet reference.
TEST(DistanceKernelsTest, TokenIdDistancesMatchValueSetPaths) {
  JaccardDistance jaccard;
  DiceDistance dice;
  CosineDistance cosine;
  Rng rng(3);
  static const std::vector<std::string> kTokens = {
      "los", "angeles", "new", "york", "cafe", "caf\xC3\xA9", "grill",
      "restaurant", "12", "345", "st", "ave", "", "x"};
  for (int trial = 0; trial < 2000; ++trial) {
    ValueSet a, b;
    const size_t na = 1 + rng.PickIndex(8);
    const size_t nb = 1 + rng.PickIndex(8);
    for (size_t i = 0; i < na; ++i) a.push_back(rng.Choice(kTokens));
    for (size_t i = 0; i < nb; ++i) b.push_back(rng.Choice(kTokens));

    StringPool pool;
    auto tokenize = [&pool](const ValueSet& values,
                            std::vector<uint32_t>& ids_out,
                            std::vector<uint32_t>& counts_out) {
      std::vector<uint32_t> ids;
      for (const auto& v : values) ids.push_back(pool.Intern(v));
      std::sort(ids.begin(), ids.end());
      for (size_t i = 0; i < ids.size();) {
        size_t j = i + 1;
        while (j < ids.size() && ids[j] == ids[i]) ++j;
        ids_out.push_back(ids[i]);
        counts_out.push_back(static_cast<uint32_t>(j - i));
        i = j;
      }
    };
    std::vector<uint32_t> ids_a, counts_a, ids_b, counts_b;
    tokenize(a, ids_a, counts_a);
    tokenize(b, ids_b, counts_b);

    for (const DistanceMeasure* m :
         {static_cast<const DistanceMeasure*>(&jaccard),
          static_cast<const DistanceMeasure*>(&dice),
          static_cast<const DistanceMeasure*>(&cosine)}) {
      ASSERT_EQ(m->TokenIdDistance(ids_a, counts_a, ids_b, counts_b),
                m->Distance(a, b))
          << m->name() << " trial " << trial;
    }
  }
}

}  // namespace
}  // namespace genlink
