// Edge-case and failure-injection tests across modules: degenerate
// configurations, empty inputs, extreme values and the structural
// invariants added around the GP loop.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "datasets/restaurant.h"
#include "gp/crossover.h"
#include "gp/genlink.h"
#include "matcher/matcher.h"
#include "rule/builder.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

// ------------------------------------------------ EnsureAggregationRoot

TEST(EnsureAggregationRootTest, WrapsBareComparison) {
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 1.0, Prop("a"), Prop("b"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  ASSERT_EQ(rule->root()->kind(), OperatorKind::kComparison);
  const AggregationFunction* min_fn = AggregationRegistry::Default().Find("min");
  EnsureAggregationRoot(*rule, min_fn);
  ASSERT_EQ(rule->root()->kind(), OperatorKind::kAggregation);
  EXPECT_TRUE(rule->Validate().ok());
  EXPECT_EQ(CollectComparisons(*rule).size(), 1u);
}

TEST(EnsureAggregationRootTest, LeavesAggregationUntouched) {
  auto rule = RuleBuilder()
                  .Aggregate("max")
                  .Compare("levenshtein", 1.0, Prop("a"), Prop("b"))
                  .End()
                  .Build();
  ASSERT_TRUE(rule.ok());
  uint64_t before = rule->StructuralHash();
  EnsureAggregationRoot(*rule, AggregationRegistry::Default().Find("min"));
  EXPECT_EQ(rule->StructuralHash(), before);
}

TEST(EnsureAggregationRootTest, WrappingPreservesSemantics) {
  // min/max/wmean over a single operand equal the operand's score.
  Dataset a("a"), b("b");
  PropertyId pa = a.schema().AddProperty("x");
  PropertyId pb = b.schema().AddProperty("x");
  Entity ea("e1");
  ea.AddValue(pa, "hello");
  ASSERT_TRUE(a.AddEntity(std::move(ea)).ok());
  Entity eb("e2");
  eb.AddValue(pb, "hallo");
  ASSERT_TRUE(b.AddEntity(std::move(eb)).ok());

  for (const char* fn : {"min", "max", "wmean"}) {
    auto rule = RuleBuilder()
                    .Compare("levenshtein", 2.0, Prop("x"), Prop("x"))
                    .Build();
    ASSERT_TRUE(rule.ok());
    double bare = rule->Evaluate(*a.FindEntity("e1"), *b.FindEntity("e2"),
                                 a.schema(), b.schema());
    EnsureAggregationRoot(*rule, AggregationRegistry::Default().Find(fn));
    double wrapped = rule->Evaluate(*a.FindEntity("e1"), *b.FindEntity("e2"),
                                    a.schema(), b.schema());
    EXPECT_DOUBLE_EQ(bare, wrapped) << fn;
  }
}

// ------------------------------------------------------- GenLink corners

class GenLinkEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyId pa = a_.schema().AddProperty("v");
    PropertyId pb = b_.schema().AddProperty("v");
    for (int i = 0; i < 6; ++i) {
      Entity ea("a" + std::to_string(i));
      ea.AddValue(pa, "value" + std::to_string(i));
      ASSERT_TRUE(a_.AddEntity(std::move(ea)).ok());
      Entity eb("b" + std::to_string(i));
      eb.AddValue(pb, "value" + std::to_string(i));
      ASSERT_TRUE(b_.AddEntity(std::move(eb)).ok());
      links_.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
    }
    Rng rng(1);
    links_.GenerateNegativesFromPositives(rng);
  }

  Dataset a_{"a"}, b_{"b"};
  ReferenceLinkSet links_;
};

TEST_F(GenLinkEdgeTest, ZeroIterationsReturnsInitialBest) {
  GenLinkConfig config;
  config.population_size = 20;
  config.max_iterations = 0;
  config.num_threads = 1;
  GenLink learner(a_, b_, config);
  Rng rng(2);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->trajectory.iterations.size(), 1u);  // iteration 0 only
  EXPECT_FALSE(result->best_rule.empty());
}

TEST_F(GenLinkEdgeTest, PopulationOfOneStillWorks) {
  GenLinkConfig config;
  config.population_size = 1;
  config.max_iterations = 3;
  config.elitism = 0;
  config.num_threads = 1;
  GenLink learner(a_, b_, config);
  Rng rng(3);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->best_rule.Validate().ok());
}

TEST_F(GenLinkEdgeTest, ElitismLargerThanPopulationIsClamped) {
  GenLinkConfig config;
  config.population_size = 4;
  config.max_iterations = 2;
  config.elitism = 100;
  config.num_threads = 1;
  GenLink learner(a_, b_, config);
  Rng rng(4);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
}

TEST_F(GenLinkEdgeTest, NoElitismStillLearns) {
  GenLinkConfig config;
  config.population_size = 30;
  config.max_iterations = 10;
  config.elitism = 0;  // the paper's verbatim Algorithm 1
  config.num_threads = 1;
  GenLink learner(a_, b_, config);
  Rng rng(5);
  auto result = learner.Learn(links_, nullptr, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->trajectory.iterations.back().train_f1, 0.8);
}

TEST_F(GenLinkEdgeTest, EmptyTrainingLinksFail) {
  ReferenceLinkSet empty;
  GenLinkConfig config;
  config.population_size = 10;
  config.num_threads = 1;
  GenLink learner(a_, b_, config);
  Rng rng(6);
  // No links: learning still runs (fitness all zero) but must not crash;
  // the result is a valid (if useless) rule.
  auto result = learner.Learn(empty, nullptr, rng);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->best_rule.Validate().ok());
}

TEST_F(GenLinkEdgeTest, PopulationStaysDiverse) {
  // Duplicate suppression: a generation never consists of structurally
  // identical rules only.
  GenLinkConfig config;
  config.population_size = 40;
  config.max_iterations = 8;
  config.num_threads = 1;
  GenLink learner(a_, b_, config);
  Rng rng(7);
  size_t min_distinct = config.population_size;
  IterationCallback callback = [&](const IterationStats& stats,
                                   const Population& population) {
    if (stats.iteration == 0) return;  // initial population may collide
    std::set<uint64_t> hashes;
    for (const auto& ind : population.individuals()) {
      hashes.insert(ind.rule.StructuralHash());
    }
    min_distinct = std::min(min_distinct, hashes.size());
  };
  ASSERT_TRUE(learner.Learn(links_, nullptr, rng, callback).ok());
  EXPECT_GT(min_distinct, config.population_size / 2);
}

// --------------------------------------------------------- matcher corners

TEST(MatcherEdgeTest, BestMatchOnlyKeepsHighestScore) {
  Dataset a("a"), b("b");
  PropertyId pa = a.schema().AddProperty("t");
  PropertyId pb = b.schema().AddProperty("t");
  Entity ea("a0");
  ea.AddValue(pa, "alpha beta");
  ASSERT_TRUE(a.AddEntity(std::move(ea)).ok());
  Entity eb1("b0");
  eb1.AddValue(pb, "alpha beta");  // exact
  ASSERT_TRUE(b.AddEntity(std::move(eb1)).ok());
  Entity eb2("b1");
  eb2.AddValue(pb, "alpha betx");  // near
  ASSERT_TRUE(b.AddEntity(std::move(eb2)).ok());

  auto rule = RuleBuilder()
                  .Compare("levenshtein", 2.0, Prop("t"), Prop("t"))
                  .Build();
  ASSERT_TRUE(rule.ok());

  MatchOptions all;
  EXPECT_EQ(GenerateLinks(*rule, a, b, all).size(), 2u);

  MatchOptions best;
  best.best_match_only = true;
  auto links = GenerateLinks(*rule, a, b, best);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].id_b, "b0");
}

TEST(MatcherEdgeTest, EmptyDatasetsYieldNoLinks) {
  Dataset a("a"), b("b");
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 1.0, Prop("x"), Prop("x"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  EXPECT_TRUE(GenerateLinks(*rule, a, b).empty());
}

// ----------------------------------------------------- extreme rule values

TEST(ExtremeValuesTest, HugeThresholdAlwaysMatchesComparables) {
  Dataset a("a"), b("b");
  PropertyId pa = a.schema().AddProperty("x");
  PropertyId pb = b.schema().AddProperty("x");
  Entity ea("e1");
  ea.AddValue(pa, "completely");
  ASSERT_TRUE(a.AddEntity(std::move(ea)).ok());
  Entity eb("e2");
  eb.AddValue(pb, "different");
  ASSERT_TRUE(b.AddEntity(std::move(eb)).ok());

  auto rule = RuleBuilder()
                  .Compare("levenshtein", 1e9, Prop("x"), Prop("x"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  double score = rule->Evaluate(*a.FindEntity("e1"), *b.FindEntity("e2"),
                                a.schema(), b.schema());
  EXPECT_GT(score, 0.99);  // 1 - d/1e9
}

TEST(ExtremeValuesTest, RuleOnEntityWithManyValues) {
  Dataset a("a"), b("b");
  PropertyId pa = a.schema().AddProperty("x");
  PropertyId pb = b.schema().AddProperty("x");
  Entity ea("e1");
  for (int i = 0; i < 500; ++i) ea.AddValue(pa, "v" + std::to_string(i));
  ASSERT_TRUE(a.AddEntity(std::move(ea)).ok());
  Entity eb("e2");
  eb.AddValue(pb, "v499");
  ASSERT_TRUE(b.AddEntity(std::move(eb)).ok());

  auto rule = RuleBuilder()
                  .Compare("equality", 0.5, Prop("x"), Prop("x"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  // Min-over-pairs lift finds the one equal value.
  EXPECT_DOUBLE_EQ(rule->Evaluate(*a.FindEntity("e1"), *b.FindEntity("e2"),
                                  a.schema(), b.schema()),
                   1.0);
}

}  // namespace
}  // namespace genlink
