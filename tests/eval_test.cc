// Unit tests for the evaluation module: confusion matrix, metrics, the
// MCC-based fitness with parsimony pressure, and the cross-validation
// harness.

#include <cmath>

#include <gtest/gtest.h>

#include "eval/cross_validation.h"
#include "eval/fitness.h"
#include "eval/metrics.h"
#include "rule/builder.h"

namespace genlink {
namespace {

TEST(MetricsTest, PerfectClassifier) {
  ConfusionMatrix cm{10, 10, 0, 0};
  EXPECT_DOUBLE_EQ(Precision(cm), 1.0);
  EXPECT_DOUBLE_EQ(Recall(cm), 1.0);
  EXPECT_DOUBLE_EQ(FMeasure(cm), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(cm), 1.0);
  EXPECT_DOUBLE_EQ(MatthewsCorrelation(cm), 1.0);
}

TEST(MetricsTest, InvertedClassifier) {
  ConfusionMatrix cm{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(FMeasure(cm), 0.0);
  EXPECT_DOUBLE_EQ(MatthewsCorrelation(cm), -1.0);
}

TEST(MetricsTest, KnownMixedCase) {
  // tp=6, tn=3, fp=1, fn=2.
  ConfusionMatrix cm{6, 3, 1, 2};
  EXPECT_DOUBLE_EQ(Precision(cm), 6.0 / 7.0);
  EXPECT_DOUBLE_EQ(Recall(cm), 6.0 / 8.0);
  double p = 6.0 / 7.0, r = 0.75;
  EXPECT_DOUBLE_EQ(FMeasure(cm), 2 * p * r / (p + r));
  EXPECT_DOUBLE_EQ(Accuracy(cm), 0.75);
  double expected_mcc = (6.0 * 3 - 1.0 * 2) / std::sqrt(7.0 * 8 * 4 * 5);
  EXPECT_NEAR(MatthewsCorrelation(cm), expected_mcc, 1e-12);
}

TEST(MetricsTest, DegenerateMarginalsYieldZeroMcc) {
  EXPECT_DOUBLE_EQ(MatthewsCorrelation({0, 10, 0, 0}), 0.0);  // no positives
  EXPECT_DOUBLE_EQ(MatthewsCorrelation({10, 0, 0, 0}), 0.0);  // no negatives
  EXPECT_DOUBLE_EQ(Precision({0, 5, 0, 5}), 0.0);
  EXPECT_DOUBLE_EQ(Recall({0, 5, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(FMeasure({0, 5, 0, 5}), 0.0);
}

TEST(MetricsTest, MccUnbalancedVsFMeasure) {
  // A classifier predicting everything positive on unbalanced data: F1
  // looks decent, MCC is 0 - the reason the paper picks MCC (Sec 5.2).
  ConfusionMatrix cm{90, 0, 10, 0};
  EXPECT_GT(FMeasure(cm), 0.9);
  EXPECT_DOUBLE_EQ(MatthewsCorrelation(cm), 0.0);
}

class FitnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyId name_a = a_.schema().AddProperty("name");
    PropertyId name_b = b_.schema().AddProperty("name");
    auto add = [](Dataset& ds, PropertyId p, const std::string& id,
                  const std::string& value) {
      Entity e(id);
      e.AddValue(p, value);
      ASSERT_TRUE(ds.AddEntity(std::move(e)).ok());
    };
    add(a_, name_a, "a1", "alpha");
    add(a_, name_a, "a2", "beta");
    add(b_, name_b, "b1", "alpha");
    add(b_, name_b, "b2", "beta");

    pairs_ = {{a_.FindEntity("a1"), b_.FindEntity("b1"), true},
              {a_.FindEntity("a2"), b_.FindEntity("b2"), true},
              {a_.FindEntity("a1"), b_.FindEntity("b2"), false},
              {a_.FindEntity("a2"), b_.FindEntity("b1"), false}};
  }

  Dataset a_{"a"}, b_{"b"};
  std::vector<LabeledPair> pairs_;
};

TEST_F(FitnessTest, PerfectRuleGetsMccMinusPenalty) {
  auto rule = RuleBuilder()
                  .Compare("equality", 0.5, Prop("name"), Prop("name"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  FitnessConfig config;
  config.parsimony_weight = 0.05;  // the paper's printed constant
  FitnessEvaluator evaluator(pairs_, a_.schema(), b_.schema(), config);
  FitnessResult result = evaluator.Evaluate(*rule);
  EXPECT_DOUBLE_EQ(result.mcc, 1.0);
  EXPECT_DOUBLE_EQ(result.f_measure, 1.0);
  // 3 operators (comparison + 2 properties): fitness = 1 - 0.05*3.
  EXPECT_DOUBLE_EQ(result.fitness, 1.0 - 0.15);
  EXPECT_EQ(result.confusion.tp, 2u);
  EXPECT_EQ(result.confusion.tn, 2u);
}

TEST_F(FitnessTest, ParsimonyPenalizesLargerEquivalentRule) {
  auto small = RuleBuilder()
                   .Compare("equality", 0.5, Prop("name"), Prop("name"))
                   .Build();
  auto large = RuleBuilder()
                   .Aggregate("min")
                   .Compare("equality", 0.5, Prop("name"), Prop("name"))
                   .Compare("equality", 0.5, Prop("name").Lower(), Prop("name"))
                   .End()
                   .Build();
  ASSERT_TRUE(small.ok() && large.ok());
  FitnessEvaluator evaluator(pairs_, a_.schema(), b_.schema());
  EXPECT_GT(evaluator.Evaluate(*small).fitness, evaluator.Evaluate(*large).fitness);
}

TEST(MomentsTest, MeanAndStddev) {
  Moments m = ComputeMoments({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(m.mean, 2.5);
  EXPECT_NEAR(m.stddev, std::sqrt(1.25), 1e-12);
  Moments empty = ComputeMoments({});
  EXPECT_DOUBLE_EQ(empty.mean, 0.0);
}

TEST(CrossValidationTest, RunsLearnerPerRunAndAggregates) {
  ReferenceLinkSet links;
  for (int i = 0; i < 40; ++i) {
    links.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
    links.AddNegative("a" + std::to_string(i), "c" + std::to_string(i));
  }
  CrossValidationConfig config;
  config.num_runs = 4;
  config.seed = 7;

  size_t calls = 0;
  auto learner = [&](const ReferenceLinkSet& train, const ReferenceLinkSet& val,
                     Rng&) -> RunTrajectory {
    ++calls;
    // 2 folds of 40+40 links: each fold has 20+20.
    EXPECT_EQ(train.size(), 40u);
    EXPECT_EQ(val.size(), 40u);
    RunTrajectory trajectory;
    for (size_t iter = 0; iter <= 3; ++iter) {
      IterationStats stats;
      stats.iteration = iter;
      stats.train_f1 = 0.5 + 0.1 * static_cast<double>(iter);
      stats.val_f1 = 0.4 + 0.1 * static_cast<double>(iter);
      stats.seconds = static_cast<double>(iter);
      trajectory.iterations.push_back(stats);
    }
    trajectory.best_rule_sexpr = "(rule)";
    return trajectory;
  };

  CrossValidationResult result = RunCrossValidation(links, config, learner);
  EXPECT_EQ(calls, 4u);
  ASSERT_EQ(result.iterations.size(), 4u);
  EXPECT_DOUBLE_EQ(result.iterations[0].train_f1.mean, 0.5);
  EXPECT_DOUBLE_EQ(result.iterations[3].train_f1.mean, 0.8);
  EXPECT_DOUBLE_EQ(result.iterations[3].val_f1.mean, 0.7);
  EXPECT_DOUBLE_EQ(result.iterations[2].train_f1.stddev, 0.0);
  EXPECT_EQ(result.example_rule_sexpr, "(rule)");
}

TEST(CrossValidationTest, ShorterRunsAreExtendedWithFinalValue) {
  ReferenceLinkSet links;
  for (int i = 0; i < 8; ++i) {
    links.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
    links.AddNegative("a" + std::to_string(i), "c" + std::to_string(i));
  }
  CrossValidationConfig config;
  config.num_runs = 2;
  size_t call = 0;
  auto learner = [&](const ReferenceLinkSet&, const ReferenceLinkSet&,
                     Rng&) -> RunTrajectory {
    RunTrajectory trajectory;
    size_t len = (call++ == 0) ? 2 : 4;  // first run stops early (F=1)
    for (size_t iter = 0; iter < len; ++iter) {
      IterationStats stats;
      stats.iteration = iter;
      stats.train_f1 = (iter + 1 == len && len == 2) ? 1.0 : 0.5;
      trajectory.iterations.push_back(stats);
    }
    return trajectory;
  };
  CrossValidationResult result = RunCrossValidation(links, config, learner);
  ASSERT_EQ(result.iterations.size(), 4u);
  // The early-stopped run contributes its final value (1.0) at iters 2-3.
  EXPECT_DOUBLE_EQ(result.iterations[3].train_f1.mean, 0.75);
}

TEST(CrossValidationTest, FindIterationReturnsClosestRow) {
  CrossValidationResult result;
  for (size_t i = 0; i < 5; ++i) {
    AggregatedIteration row;
    row.iteration = i;
    result.iterations.push_back(row);
  }
  EXPECT_EQ(result.FindIteration(3)->iteration, 3u);
  EXPECT_EQ(result.FindIteration(99)->iteration, 4u);
}

TEST(CrossValidationTest, DeterministicForSameSeed) {
  ReferenceLinkSet links;
  for (int i = 0; i < 10; ++i) {
    links.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
    links.AddNegative("a" + std::to_string(i), "c" + std::to_string(i));
  }
  CrossValidationConfig config;
  config.num_runs = 2;
  config.seed = 123;
  std::vector<std::string> seen_train_ids;
  auto learner = [&](const ReferenceLinkSet& train, const ReferenceLinkSet&,
                     Rng&) -> RunTrajectory {
    std::string ids;
    for (const auto& link : train.positives()) ids += link.id_a + ",";
    seen_train_ids.push_back(ids);
    RunTrajectory t;
    t.iterations.push_back({});
    return t;
  };
  RunCrossValidation(links, config, learner);
  auto first = seen_train_ids;
  seen_train_ids.clear();
  RunCrossValidation(links, config, learner);
  EXPECT_EQ(first, seen_train_ids);
}

}  // namespace
}  // namespace genlink
