// Tests for the execution engine: token blocking recall and agreement of
// blocked execution with the exhaustive cross product.

#include <gtest/gtest.h>

#include "datasets/linkedmdb.h"
#include "datasets/restaurant.h"
#include "matcher/matcher.h"
#include "rule/builder.h"

namespace genlink {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyId a_name = a_.schema().AddProperty("name");
    PropertyId b_label = b_.schema().AddProperty("label");
    const char* names[] = {"alpha one", "bravo two",  "charlie three",
                           "delta four", "echo five", "foxtrot six"};
    for (int i = 0; i < 6; ++i) {
      Entity ea("a" + std::to_string(i));
      ea.AddValue(a_name, names[i]);
      ASSERT_TRUE(a_.AddEntity(std::move(ea)).ok());
      Entity eb("b" + std::to_string(i));
      eb.AddValue(b_label, names[i]);
      ASSERT_TRUE(b_.AddEntity(std::move(eb)).ok());
    }
  }

  LinkageRule NameRule() {
    auto rule = RuleBuilder()
                    .Compare("levenshtein", 1.0, Prop("name").Lower(),
                             Prop("label").Lower())
                    .Build();
    EXPECT_TRUE(rule.ok());
    return std::move(rule).value();
  }

  Dataset a_{"a"}, b_{"b"};
};

TEST_F(MatcherTest, BlockingIndexFindsSharedTokenCandidates) {
  TokenBlockingIndex index(b_, {"label"});
  EXPECT_GT(index.NumTokens(), 0u);
  auto candidates = index.Candidates(*a_.FindEntity("a0"), a_.schema());
  // "alpha one" shares tokens only with b0.
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(b_.entity(candidates[0]).id(), "b0");
}

TEST_F(MatcherTest, GenerateLinksFindsAllTruePairs) {
  auto links = GenerateLinks(NameRule(), a_, b_);
  ASSERT_EQ(links.size(), 6u);
  for (const auto& link : links) {
    EXPECT_EQ(link.id_a.substr(1), link.id_b.substr(1));
    EXPECT_DOUBLE_EQ(link.score, 1.0);
  }
}

TEST_F(MatcherTest, BlockedAndExhaustiveExecutionAgree) {
  MatchOptions blocked;
  blocked.use_blocking = true;
  MatchOptions exhaustive;
  exhaustive.use_blocking = false;
  auto l1 = GenerateLinks(NameRule(), a_, b_, blocked);
  auto l2 = GenerateLinks(NameRule(), a_, b_, exhaustive);
  ASSERT_EQ(l1.size(), l2.size());
  for (size_t i = 0; i < l1.size(); ++i) {
    EXPECT_EQ(l1[i].id_a, l2[i].id_a);
    EXPECT_EQ(l1[i].id_b, l2[i].id_b);
    EXPECT_DOUBLE_EQ(l1[i].score, l2[i].score);
  }
}

TEST_F(MatcherTest, ThresholdFiltersWeakMatches) {
  MatchOptions options;
  options.threshold = 1.01;  // above the max score
  EXPECT_TRUE(GenerateLinks(NameRule(), a_, b_, options).empty());
}

TEST_F(MatcherTest, DedupSelfMatchEmitsEachPairOnce) {
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 1.0, Prop("name"), Prop("name"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  auto links = GenerateLinks(*rule, a_, a_);
  // Every entity matches itself, but self-pairs and reversed pairs are
  // suppressed for dedup, so only distinct-name collisions remain: none.
  EXPECT_TRUE(links.empty());
}

// best_match_only's documented tie-break: highest score first, then
// the lexicographically smallest id_b — independent of candidate
// enumeration order (matcher/matcher.h).
TEST_F(MatcherTest, BestMatchTieBreakPrefersSmallestIdOnExactTies) {
  // Two targets carry the SAME value as source "a0", so both score an
  // exact 1.0; ids chosen so candidate-index order ("b9..." inserted
  // before "b10...") disagrees with lexicographic order.
  Dataset source("tie_a"), targets("tie_b");
  PropertyId s_name = source.schema().AddProperty("name");
  PropertyId t_label = targets.schema().AddProperty("label");
  Entity query("a0");
  query.AddValue(s_name, "golf seven");
  ASSERT_TRUE(source.AddEntity(std::move(query)).ok());
  for (const char* id : {"b9", "b10"}) {
    Entity eb(id);
    eb.AddValue(t_label, "golf seven");
    ASSERT_TRUE(targets.AddEntity(std::move(eb)).ok());
  }

  auto rule = RuleBuilder()
                  .Compare("levenshtein", 1.0, Prop("name").Lower(),
                           Prop("label").Lower())
                  .Build();
  ASSERT_TRUE(rule.ok());
  MatchOptions options;
  options.best_match_only = true;
  for (bool use_blocking : {true, false}) {
    for (bool use_value_store : {true, false}) {
      options.use_blocking = use_blocking;
      options.use_value_store = use_value_store;
      auto links = GenerateLinks(*rule, source, targets, options);
      ASSERT_EQ(links.size(), 1u)
          << "blocking=" << use_blocking << " store=" << use_value_store;
      // Exact tie at score 1.0: "b10" < "b9" lexicographically wins,
      // although b9 enumerates first.
      EXPECT_DOUBLE_EQ(links[0].score, 1.0);
      EXPECT_EQ(links[0].id_b, "b10");
    }
  }
}

TEST_F(MatcherTest, BestMatchKeepsHigherScoreOverSmallerId) {
  // No tie: the higher score must win even when its id_b is larger.
  Dataset source("score_a"), targets("score_b");
  PropertyId s_name = source.schema().AddProperty("name");
  PropertyId t_label = targets.schema().AddProperty("label");
  Entity query("a0");
  query.AddValue(s_name, "hotel india");
  ASSERT_TRUE(source.AddEntity(std::move(query)).ok());
  Entity close_but_not_exact("b1");
  close_but_not_exact.AddValue(t_label, "hotel indiax");  // distance 1
  ASSERT_TRUE(targets.AddEntity(std::move(close_but_not_exact)).ok());
  Entity exact("b2");
  exact.AddValue(t_label, "hotel india");  // distance 0
  ASSERT_TRUE(targets.AddEntity(std::move(exact)).ok());

  auto rule = RuleBuilder()
                  .Compare("levenshtein", 2.0, Prop("name").Lower(),
                           Prop("label").Lower())
                  .Build();
  ASSERT_TRUE(rule.ok());
  MatchOptions options;
  options.best_match_only = true;
  auto links = GenerateLinks(*rule, source, targets, options);
  ASSERT_EQ(links.size(), 1u);
  EXPECT_EQ(links[0].id_b, "b2");
  EXPECT_DOUBLE_EQ(links[0].score, 1.0);
}

TEST_F(MatcherTest, SourcePropertyExtraction) {
  LinkageRule rule = NameRule();
  EXPECT_EQ(SourceProperties(rule), (std::vector<std::string>{"name"}));
  EXPECT_EQ(TargetProperties(rule), (std::vector<std::string>{"label"}));
}

// The value-store matcher path must generate links bit-identical to the
// per-pair operator-tree path: same pairs, same doubles, same order.
TEST(MatcherIntegrationTest, ValueStorePathBitIdenticalOnRestaurant) {
  RestaurantConfig config;
  config.scale = 0.4;
  MatchingTask task = GenerateRestaurant(config);
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 3.0, Prop("address").Lower(),
                           Prop("address").Lower())
                  .End()
                  .Build();
  ASSERT_TRUE(rule.ok());

  for (bool use_blocking : {true, false}) {
    MatchOptions with_store, without_store;
    with_store.use_blocking = without_store.use_blocking = use_blocking;
    with_store.use_value_store = true;
    without_store.use_value_store = false;
    // Restaurant is a dedup task: source matched against itself
    // (exercises the self-match dedup in the compiled path too).
    auto fast = GenerateLinks(*rule, task.a, task.a, with_store);
    auto reference = GenerateLinks(*rule, task.a, task.a, without_store);
    ASSERT_EQ(fast.size(), reference.size()) << "blocking=" << use_blocking;
    EXPECT_GT(fast.size(), 0u);
    for (size_t i = 0; i < fast.size(); ++i) {
      EXPECT_EQ(fast[i].id_a, reference[i].id_a);
      EXPECT_EQ(fast[i].id_b, reference[i].id_b);
      // Bit-identical scores, not just nearly equal.
      EXPECT_EQ(fast[i].score, reference[i].score) << i;
    }
  }
}

TEST(MatcherIntegrationTest, BlockingRecallOnGeneratedMovies) {
  // On the LinkedMDB generator, blocked execution with a title+date rule
  // must recover nearly all reference links.
  LinkedMdbConfig config;
  config.scale = 1.0;
  MatchingTask task = GenerateLinkedMdb(config);
  // Date threshold 800: the sources disagree on exact dates within a
  // year (d <= 364), and the score 1 - d/θ must stay >= 0.5.
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.6, Prop("label").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("date", 800.0, Prop("initial_release_date"),
                           Prop("releaseDate"))
                  .End()
                  .Build();
  ASSERT_TRUE(rule.ok());

  auto links = GenerateLinks(*rule, task.a, task.b);
  std::set<std::pair<std::string, std::string>> found;
  for (const auto& link : links) found.insert({link.id_a, link.id_b});

  size_t hit = 0;
  for (const auto& ref : task.links.positives()) {
    if (found.count({ref.id_a, ref.id_b})) ++hit;
  }
  double recall =
      static_cast<double>(hit) / static_cast<double>(task.links.positives().size());
  EXPECT_GT(recall, 0.9);
}

}  // namespace
}  // namespace genlink
