// Unit tests for the text substrate: case folding, tokenization,
// n-grams, the Porter stemmer and Soundex.

#include <gtest/gtest.h>

#include "text/case_fold.h"
#include "text/ngram.h"
#include "text/porter_stemmer.h"
#include "text/soundex.h"
#include "text/tokenizer.h"

namespace genlink {
namespace {

TEST(CaseFoldTest, Lower) {
  EXPECT_EQ(ToLowerAscii("iPod 3G!"), "ipod 3g!");
  EXPECT_EQ(ToLowerAscii(""), "");
}

TEST(CaseFoldTest, Upper) { EXPECT_EQ(ToUpperAscii("iPod"), "IPOD"); }

TEST(CaseFoldTest, StripPunctuation) {
  EXPECT_EQ(StripPunctuation("a.b,c!d"), "abcd");
  EXPECT_EQ(StripPunctuation("no punct"), "no punct");
}

TEST(CaseFoldTest, IsAsciiDigits) {
  EXPECT_TRUE(IsAsciiDigits("0123"));
  EXPECT_FALSE(IsAsciiDigits("12a"));
  EXPECT_FALSE(IsAsciiDigits(""));
}

TEST(TokenizerTest, AlnumSplitsOnPunctuationAndSpace) {
  EXPECT_EQ(TokenizeAlnum("J. Doe (ed.)"),
            (std::vector<std::string>{"J", "Doe", "ed"}));
  EXPECT_EQ(TokenizeAlnum("a1-b2"), (std::vector<std::string>{"a1", "b2"}));
  EXPECT_TRUE(TokenizeAlnum("...").empty());
  EXPECT_TRUE(TokenizeAlnum("").empty());
}

TEST(TokenizerTest, WhitespaceKeepsPunctuation) {
  EXPECT_EQ(TokenizeWhitespace("J. Doe"),
            (std::vector<std::string>{"J.", "Doe"}));
}

TEST(NgramTest, BasicGrams) {
  EXPECT_EQ(CharNgrams("abcd", 2),
            (std::vector<std::string>{"ab", "bc", "cd"}));
  EXPECT_EQ(CharNgrams("ab", 3), (std::vector<std::string>{"ab"}));
  EXPECT_TRUE(CharNgrams("", 2).empty());
  EXPECT_TRUE(CharNgrams("abc", 0).empty());
}

TEST(NgramTest, PaddedGrams) {
  EXPECT_EQ(PaddedCharNgrams("ab", 2, '#'),
            (std::vector<std::string>{"#a", "ab", "b#"}));
}

TEST(PorterStemmerTest, ClassicExamples) {
  // Reference pairs from the original algorithm description.
  EXPECT_EQ(PorterStem("caresses"), "caress");
  EXPECT_EQ(PorterStem("ponies"), "poni");
  EXPECT_EQ(PorterStem("caress"), "caress");
  EXPECT_EQ(PorterStem("cats"), "cat");
  EXPECT_EQ(PorterStem("feed"), "feed");
  EXPECT_EQ(PorterStem("agreed"), "agre");
  EXPECT_EQ(PorterStem("plastered"), "plaster");
  EXPECT_EQ(PorterStem("motoring"), "motor");
  EXPECT_EQ(PorterStem("sing"), "sing");
  EXPECT_EQ(PorterStem("conflated"), "conflat");
  EXPECT_EQ(PorterStem("troubled"), "troubl");
  EXPECT_EQ(PorterStem("sized"), "size");
  EXPECT_EQ(PorterStem("hopping"), "hop");
  EXPECT_EQ(PorterStem("falling"), "fall");
  EXPECT_EQ(PorterStem("hissing"), "hiss");
  EXPECT_EQ(PorterStem("happy"), "happi");
  EXPECT_EQ(PorterStem("relational"), "relat");
  EXPECT_EQ(PorterStem("conditional"), "condit");
  EXPECT_EQ(PorterStem("rational"), "ration");
  EXPECT_EQ(PorterStem("digitizer"), "digit");
  EXPECT_EQ(PorterStem("operator"), "oper");
  EXPECT_EQ(PorterStem("triplicate"), "triplic");
  EXPECT_EQ(PorterStem("hopeful"), "hope");
  EXPECT_EQ(PorterStem("goodness"), "good");
  EXPECT_EQ(PorterStem("revival"), "reviv");
  EXPECT_EQ(PorterStem("adjustable"), "adjust");
  EXPECT_EQ(PorterStem("adoption"), "adopt");
  EXPECT_EQ(PorterStem("probate"), "probat");
  EXPECT_EQ(PorterStem("rate"), "rate");
  EXPECT_EQ(PorterStem("controll"), "control");
}

TEST(PorterStemmerTest, ShortAndNonAlphaUnchanged) {
  EXPECT_EQ(PorterStem("at"), "at");
  EXPECT_EQ(PorterStem("a1b"), "a1b");
  EXPECT_EQ(PorterStem("Mixed"), "Mixed");  // uppercase passes through
}

TEST(PorterStemmerTest, StemmingUnifiesInflections) {
  EXPECT_EQ(PorterStem("matching"), PorterStem("matched"));
  EXPECT_EQ(PorterStem("connection"), PorterStem("connections"));
}

TEST(SoundexTest, ClassicCodes) {
  EXPECT_EQ(Soundex("Robert"), "R163");
  EXPECT_EQ(Soundex("Rupert"), "R163");
  EXPECT_EQ(Soundex("Ashcraft"), "A261");
  EXPECT_EQ(Soundex("Ashcroft"), "A261");
  EXPECT_EQ(Soundex("Tymczak"), "T522");
  EXPECT_EQ(Soundex("Pfister"), "P236");
  EXPECT_EQ(Soundex("Honeyman"), "H555");
}

TEST(SoundexTest, EdgeCases) {
  EXPECT_EQ(Soundex(""), "");
  EXPECT_EQ(Soundex("123"), "");
  EXPECT_EQ(Soundex("a"), "A000");
  EXPECT_EQ(Soundex("robert"), "R163");  // case-insensitive
}

}  // namespace
}  // namespace genlink
