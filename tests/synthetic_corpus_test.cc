// The synthetic corpus generator (datasets/synthetic.h): determinism —
// same seed means byte-identical corpora for any thread count and
// across process runs (a pinned golden fingerprint) — ground-truth
// link-set soundness, and a 50k-entity scale smoke. The streaming
// delta generator (GenerateSyntheticDeltas) is pinned the same way,
// plus stream soundness: every delete targets an id that is live at
// that point of the stream.

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "datasets/synthetic.h"

namespace genlink {
namespace {

SyntheticConfig SmallConfig() {
  SyntheticConfig config;
  config.num_entities = 2000;
  return config;
}

// Cross-process determinism: this constant was produced by an earlier
// build of this test and must never drift — it pins the generator's
// byte-exact output (entities, order, links) across runs, platforms
// and refactorings. If a deliberate generator change lands, regenerate
// with FingerprintTask(GenerateSynthetic(SmallConfig())) and say so in
// the commit.
constexpr uint64_t kGoldenFingerprint2000 = 0xca7b6ebd8f83a031ULL;

TEST(SyntheticCorpusTest, FingerprintMatchesPinnedGolden) {
  EXPECT_EQ(FingerprintTask(GenerateSynthetic(SmallConfig())),
            kGoldenFingerprint2000);
}

TEST(SyntheticCorpusTest, SameSeedIsByteIdenticalForAnyThreadCount) {
  const uint64_t serial = FingerprintTask(GenerateSynthetic(SmallConfig()));
  for (const size_t threads : {2ul, 4ul, 8ul, 0ul}) {
    SyntheticConfig config = SmallConfig();
    config.num_threads = threads;
    EXPECT_EQ(FingerprintTask(GenerateSynthetic(config)), serial)
        << "corpus diverged at num_threads=" << threads;
  }
}

TEST(SyntheticCorpusTest, SameSeedIsIdenticalAcrossTwoGenerations) {
  // Two full generator runs in one process (the cross-process half is
  // the pinned golden above).
  EXPECT_EQ(FingerprintTask(GenerateSynthetic(SmallConfig())),
            FingerprintTask(GenerateSynthetic(SmallConfig())));
}

TEST(SyntheticCorpusTest, DifferentSeedsDiffer) {
  SyntheticConfig other = SmallConfig();
  other.seed += 1;
  EXPECT_NE(FingerprintTask(GenerateSynthetic(SmallConfig())),
            FingerprintTask(GenerateSynthetic(other)));
}

TEST(SyntheticCorpusTest, GroundTruthLinksAreSound) {
  const MatchingTask task = GenerateSynthetic(SmallConfig());
  ASSERT_EQ(task.a.size(), 2000u);
  ASSERT_EQ(task.b.size(), 2000u);
  EXPECT_FALSE(task.dedup);

  std::set<std::pair<std::string, std::string>> positive_pairs;
  for (const ReferenceLink& link : task.links.positives()) {
    // Every link endpoint resolves in its own side.
    EXPECT_NE(task.a.FindEntity(link.id_a), nullptr) << link.id_a;
    EXPECT_NE(task.b.FindEntity(link.id_b), nullptr) << link.id_b;
    // No duplicate positive pairs.
    EXPECT_TRUE(positive_pairs.insert({link.id_a, link.id_b}).second)
        << link.id_a << " - " << link.id_b;
  }
  for (const ReferenceLink& link : task.links.negatives()) {
    EXPECT_NE(task.a.FindEntity(link.id_a), nullptr) << link.id_a;
    EXPECT_NE(task.b.FindEntity(link.id_b), nullptr) << link.id_b;
    // Negatives never contradict positives.
    EXPECT_EQ(positive_pairs.count({link.id_a, link.id_b}), 0u)
        << link.id_a << " - " << link.id_b << " is labelled both ways";
  }
  // The task is learner-ready: |R-| >= |R+| via confusables plus
  // permutation top-up.
  EXPECT_GE(task.links.negatives().size(), task.links.positives().size());

  // The positive count concentrates around duplicate_rate * n.
  const double expected =
      SmallConfig().duplicate_rate * static_cast<double>(task.a.size());
  EXPECT_NEAR(static_cast<double>(task.links.positives().size()), expected,
              0.15 * expected);
}

SyntheticDeltaConfig SmallDeltaConfig() {
  SyntheticDeltaConfig config;
  config.base = SmallConfig();
  config.num_deltas = 500;
  return config;
}

// Pinned the same way as the corpus fingerprint above: `genlink gen
// --entities 2000 --deltas 500` must keep printing this value. If a
// deliberate generator change lands, regenerate with
// FingerprintDeltas(GenerateSyntheticDeltas(SmallDeltaConfig())) and
// say so in the commit.
constexpr uint64_t kGoldenDeltaFingerprint = 0x9e1751c5138aee35ULL;

TEST(SyntheticDeltaTest, FingerprintMatchesPinnedGolden) {
  EXPECT_EQ(FingerprintDeltas(GenerateSyntheticDeltas(SmallDeltaConfig())),
            kGoldenDeltaFingerprint);
}

TEST(SyntheticDeltaTest, SameConfigIsIdenticalAcrossTwoGenerations) {
  EXPECT_EQ(FingerprintDeltas(GenerateSyntheticDeltas(SmallDeltaConfig())),
            FingerprintDeltas(GenerateSyntheticDeltas(SmallDeltaConfig())));
}

TEST(SyntheticDeltaTest, DifferentSeedsDiffer) {
  SyntheticDeltaConfig other = SmallDeltaConfig();
  other.seed += 1;
  EXPECT_NE(FingerprintDeltas(GenerateSyntheticDeltas(SmallDeltaConfig())),
            FingerprintDeltas(GenerateSyntheticDeltas(other)));
}

TEST(SyntheticDeltaTest, StreamIsSound) {
  const SyntheticDeltas deltas = GenerateSyntheticDeltas(SmallDeltaConfig());
  ASSERT_EQ(deltas.ops.size(), 500u);
  ASSERT_EQ(deltas.schema.NumProperties(), 5u);

  // Replay the stream against the logical alive set the generator
  // promises to respect: deletes always hit a live id, so ANY
  // contiguous batching passes LiveCorpus::ApplyBatch validation.
  std::set<std::string> alive;
  for (size_t i = 0; i < SmallConfig().num_entities; ++i) {
    alive.insert("b" + std::to_string(i));
  }
  size_t removes = 0;
  size_t new_entities = 0;
  for (const SyntheticDelta& op : deltas.ops) {
    ASSERT_FALSE(op.entity.id().empty());
    if (op.remove) {
      ++removes;
      EXPECT_EQ(alive.erase(op.entity.id()), 1u)
          << "delete of dead id " << op.entity.id();
    } else {
      if (alive.insert(op.entity.id()).second &&
          op.entity.id().front() == 'u') {
        ++new_entities;
      }
    }
  }
  // The stream exercises all three mutation kinds.
  EXPECT_GT(removes, 0u);
  EXPECT_GT(new_entities, 0u);
  EXPECT_GT(deltas.ops.size() - removes - new_entities, 0u);
}

TEST(SyntheticCorpusTest, ScaleSmoke50k) {
  SyntheticConfig config;
  config.num_entities = 50000;
  config.num_threads = 0;
  const MatchingTask task = GenerateSynthetic(config);
  EXPECT_EQ(task.a.size(), 50000u);
  EXPECT_EQ(task.b.size(), 50000u);
  EXPECT_GT(task.links.positives().size(), 10000u);
  // Ids are positional and unique by construction.
  EXPECT_STREQ(task.a.entity(49999).id().c_str(), "a49999");
  EXPECT_STREQ(task.b.entity(49999).id().c_str(), "b49999");
}

}  // namespace
}  // namespace genlink
