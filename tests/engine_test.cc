// The evaluation engine's contract (eval/engine.h): results bit-identical
// to the serial FitnessEvaluator with or without its caches, identical
// learning runs at 1/4/8 threads, and caches that actually hit.

#include <gtest/gtest.h>

#include "datasets/cora.h"
#include "datasets/restaurant.h"
#include "eval/engine.h"
#include "gp/genlink.h"
#include "gp/rule_generator.h"
#include "rule/builder.h"
#include "rule/rule_hash.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

// ------------------------------------------------------------ rule hash

class RuleHashTest : public ::testing::Test {
 protected:
  RuleHashTest()
      : generator_(MakePairs(), {"title", "date"}, {"name", "released"}) {}

  static std::vector<CompatiblePair> MakePairs() {
    const auto& reg = DistanceRegistry::Default();
    return {{"title", "name", reg.Find("levenshtein"), 5},
            {"date", "released", reg.Find("date"), 3}};
  }

  RuleGenerator generator_;
};

TEST_F(RuleHashTest, CanonicalHashStableAcrossClones) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    LinkageRule rule = generator_.RandomRule(rng);
    LinkageRule clone = rule.Clone();
    EXPECT_EQ(CanonicalRuleHash(rule), CanonicalRuleHash(clone));
    EXPECT_EQ(CanonicalRuleHash(rule), CanonicalRuleHash(rule));
  }
}

TEST_F(RuleHashTest, ThresholdChangesCanonicalButNotSignature) {
  Rng rng(4);
  LinkageRule rule = generator_.RandomRule(rng);
  auto comparisons = CollectComparisons(rule);
  ASSERT_FALSE(comparisons.empty());
  uint64_t canonical_before = CanonicalRuleHash(rule);
  uint64_t signature_before = ComparisonSignature(*comparisons[0]);
  comparisons[0]->set_threshold(comparisons[0]->threshold() + 1.0);
  // The whole-rule hash must see the threshold (fitness depends on it)...
  EXPECT_NE(CanonicalRuleHash(rule), canonical_before);
  // ...but the comparison signature must not: the raw distance it keys
  // is threshold-free, which is what lets offspring with mutated
  // thresholds reuse their parents' distance rows.
  EXPECT_EQ(ComparisonSignature(*comparisons[0]), signature_before);
}

TEST_F(RuleHashTest, AnalyzeCollectsAllComparisons) {
  Rng rng(5);
  for (int i = 0; i < 20; ++i) {
    LinkageRule rule = generator_.RandomRule(rng);
    RuleHashInfo info = AnalyzeRule(rule);
    EXPECT_EQ(info.comparisons.size(), CollectComparisons(rule).size());
    EXPECT_EQ(info.canonical, CanonicalRuleHash(rule));
  }
}

TEST_F(RuleHashTest, HasherInternsSharedSubtrees) {
  Rng rng(6);
  RuleHasher hasher;
  LinkageRule rule = generator_.RandomRule(rng);
  hasher.Analyze(rule);
  uint64_t hits_after_first = hasher.subtree_hits();
  // Re-analyzing the same structure interns nothing new: every probe
  // hits (this is the consing a crossover offspring benefits from).
  hasher.Analyze(rule);
  EXPECT_GT(hasher.subtree_hits(), hits_after_first);
  EXPECT_EQ(hasher.subtree_probes(), 2 * hasher.distinct_subtrees());
}

// --------------------------------------------------------- fitness cache

TEST(FitnessCacheTest, RoundTrip) {
  FitnessCache cache;
  EXPECT_EQ(cache.Find(123), nullptr);
  FitnessResult result;
  result.fitness = 0.5;
  cache.Insert(123, result);
  const FitnessResult* hit = cache.Find(123);
  ASSERT_NE(hit, nullptr);
  EXPECT_DOUBLE_EQ(hit->fitness, 0.5);
}

TEST(FitnessCacheTest, EvictsWhenFull) {
  FitnessCache cache(/*max_entries=*/4);
  for (uint64_t i = 0; i < 5; ++i) cache.Insert(i, {});
  EXPECT_LE(cache.size(), 4u);
}

// ------------------------------------------- engine vs serial evaluator

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoraConfig config;
    config.scale = 0.05;
    task_ = GenerateCora(config);
    auto pairs = task_.links.Resolve(task_.Source(), task_.Target());
    ASSERT_TRUE(pairs.ok());
    pairs_ = std::move(*pairs);
  }

  std::vector<LinkageRule> RandomRules(size_t count, uint64_t seed) {
    std::vector<CompatiblePair> seeded;
    const auto& reg = DistanceRegistry::Default();
    seeded.push_back({"title", "title", reg.Find("levenshtein"), 5});
    seeded.push_back({"author", "author", reg.Find("jaccard"), 3});
    RuleGenerator generator(seeded, {"title", "author"}, {"title", "author"});
    Rng rng(seed);
    std::vector<LinkageRule> rules;
    for (size_t i = 0; i < count; ++i) rules.push_back(generator.RandomRule(rng));
    return rules;
  }

  MatchingTask task_;
  std::vector<LabeledPair> pairs_;
};

TEST_F(EngineTest, BitIdenticalToSerialEvaluator) {
  EvaluationEngine engine(pairs_, task_.Source().schema(),
                          task_.Target().schema());
  FitnessEvaluator serial(pairs_, task_.Source().schema(),
                          task_.Target().schema());
  for (const LinkageRule& rule : RandomRules(80, 11)) {
    FitnessResult cached = engine.Evaluate(rule);
    FitnessResult reference = serial.Evaluate(rule);
    EXPECT_EQ(cached.fitness, reference.fitness);
    EXPECT_EQ(cached.mcc, reference.mcc);
    EXPECT_EQ(cached.f_measure, reference.f_measure);
    EXPECT_EQ(cached.confusion.tp, reference.confusion.tp);
    EXPECT_EQ(cached.confusion.tn, reference.confusion.tn);
    EXPECT_EQ(cached.confusion.fp, reference.confusion.fp);
    EXPECT_EQ(cached.confusion.fn, reference.confusion.fn);
  }
}

TEST_F(EngineTest, DistanceCacheDoesNotChangeResults) {
  EngineConfig with, without;
  without.cache_distances = false;
  EvaluationEngine cached(pairs_, task_.Source().schema(),
                          task_.Target().schema(), {}, with);
  EvaluationEngine uncached(pairs_, task_.Source().schema(),
                            task_.Target().schema(), {}, without);
  for (const LinkageRule& rule : RandomRules(60, 12)) {
    EXPECT_EQ(cached.Evaluate(rule).fitness, uncached.Evaluate(rule).fitness);
  }
}

TEST_F(EngineTest, ValueStoreDoesNotChangeResults) {
  EngineConfig with, without;
  with.use_value_store = true;
  without.use_value_store = false;
  EvaluationEngine store_engine(pairs_, task_.Source().schema(),
                                task_.Target().schema(), {}, with);
  EvaluationEngine plain_engine(pairs_, task_.Source().schema(),
                                task_.Target().schema(), {}, without);
  FitnessEvaluator serial(pairs_, task_.Source().schema(),
                          task_.Target().schema());
  for (const LinkageRule& rule : RandomRules(80, 21)) {
    FitnessResult via_store = store_engine.Evaluate(rule);
    FitnessResult via_rows = plain_engine.Evaluate(rule);
    FitnessResult reference = serial.Evaluate(rule);
    // Bit-identical across all three paths: interned distances, per-pair
    // distances from the operator tree, and the serial evaluator.
    EXPECT_EQ(via_store.fitness, reference.fitness);
    EXPECT_EQ(via_rows.fitness, reference.fitness);
    EXPECT_EQ(via_store.mcc, reference.mcc);
    EXPECT_EQ(via_store.f_measure, reference.f_measure);
    EXPECT_EQ(via_store.confusion.tp, reference.confusion.tp);
    EXPECT_EQ(via_store.confusion.tn, reference.confusion.tn);
    EXPECT_EQ(via_store.confusion.fp, reference.confusion.fp);
    EXPECT_EQ(via_store.confusion.fn, reference.confusion.fn);
  }
  // The store actually ran: plans were compiled and values interned.
  EXPECT_GT(store_engine.stats().value_plans_compiled, 0u);
  EXPECT_GT(store_engine.stats().values_interned, 0u);
  EXPECT_EQ(plain_engine.stats().value_plans_compiled, 0u);
}

TEST_F(EngineTest, ValueStorePlansSharedAcrossComparisons) {
  EvaluationEngine engine(pairs_, task_.Source().schema(),
                          task_.Target().schema());
  // Two rules with different measures (distinct comparison signatures,
  // so both rows are cold) over the SAME value subtrees: the second
  // rule's plans must all hit the store.
  auto lev = RuleBuilder()
                 .Compare("levenshtein", 2.0, Prop("title").Lower(),
                          Prop("title").Lower())
                 .Build();
  auto jaro = RuleBuilder()
                  .Compare("jaro", 0.3, Prop("title").Lower(),
                           Prop("title").Lower())
                  .Build();
  ASSERT_TRUE(lev.ok());
  ASSERT_TRUE(jaro.ok());
  engine.Evaluate(*lev);
  const uint64_t plans_after_first = engine.stats().value_plans_compiled;
  const uint64_t hits_after_first = engine.stats().value_plan_hits;
  EXPECT_GT(plans_after_first, 0u);
  engine.Evaluate(*jaro);
  EXPECT_EQ(engine.stats().value_plans_compiled, plans_after_first);
  EXPECT_GT(engine.stats().value_plan_hits, hits_after_first);
}

TEST_F(EngineTest, FitnessMemoHitsOnRepeatedRules) {
  EvaluationEngine engine(pairs_, task_.Source().schema(),
                          task_.Target().schema());
  auto rules = RandomRules(10, 13);
  for (const LinkageRule& rule : rules) engine.Evaluate(rule);
  EXPECT_EQ(engine.stats().fitness_hits, 0u);
  for (const LinkageRule& rule : rules) engine.Evaluate(rule);
  EXPECT_EQ(engine.stats().fitness_hits, rules.size());
  EXPECT_EQ(engine.stats().rules_evaluated, 2 * rules.size());
}

TEST_F(EngineTest, BatchInternalDuplicatesEvaluatedOnce) {
  EvaluationEngine engine(pairs_, task_.Source().schema(),
                          task_.Target().schema());
  auto rules = RandomRules(1, 15);
  LinkageRule clone = rules[0].Clone();
  const LinkageRule* batch[] = {&rules[0], &clone};
  FitnessResult results[2];
  engine.EvaluateBatch(batch, results);
  EXPECT_EQ(engine.stats().fitness_misses, 1u);
  EXPECT_EQ(engine.stats().fitness_hits, 1u);
  EXPECT_EQ(results[0].fitness, results[1].fitness);
  EXPECT_EQ(results[0].confusion.tp, results[1].confusion.tp);
}

TEST_F(EngineTest, DistanceRowsSharedAcrossRules) {
  EvaluationEngine engine(pairs_, task_.Source().schema(),
                          task_.Target().schema());
  // Two structurally different rules sharing comparison subtrees: clone
  // one and change only a threshold.
  auto rules = RandomRules(1, 14);
  LinkageRule variant = rules[0].Clone();
  auto comparisons = CollectComparisons(variant);
  ASSERT_FALSE(comparisons.empty());
  comparisons[0]->set_threshold(comparisons[0]->threshold() * 0.5 + 0.1);
  engine.Evaluate(rules[0]);
  uint64_t rows_after_first = engine.stats().distance_rows_computed;
  engine.Evaluate(variant);
  // The variant is a fitness miss but all of its distance rows hit.
  EXPECT_EQ(engine.stats().fitness_misses, 2u);
  EXPECT_EQ(engine.stats().distance_rows_computed, rows_after_first);
  EXPECT_GT(engine.stats().distance_row_hits, 0u);
}

// --------------------------------------------- learning-run invariants

class EngineLearnTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RestaurantConfig config;
    config.scale = 0.3;
    task_ = GenerateRestaurant(config);
  }

  LearnResult Learn(size_t threads, bool use_value_store = true) {
    GenLinkConfig config;
    config.population_size = 50;
    config.max_iterations = 5;
    config.stop_f_measure = 1.1;  // never stop early: exercise all 5
    config.num_threads = threads;
    config.use_value_store = use_value_store;
    GenLink learner(task_.Source(), task_.Target(), config);
    Rng rng(2024);
    auto result = learner.Learn(task_.links, nullptr, rng);
    EXPECT_TRUE(result.ok());
    return result.ok() ? std::move(*result) : LearnResult{};
  }

  MatchingTask task_;
};

TEST_F(EngineLearnTest, SameSeedSameTrajectoryAt148Threads) {
  LearnResult r1 = Learn(1);
  LearnResult r4 = Learn(4);
  LearnResult r8 = Learn(8);

  // Identical best rule...
  EXPECT_EQ(ToSexpr(r1.best_rule), ToSexpr(r4.best_rule));
  EXPECT_EQ(ToSexpr(r1.best_rule), ToSexpr(r8.best_rule));

  // ...and an identical fitness trajectory, iteration by iteration.
  ASSERT_EQ(r1.trajectory.iterations.size(), r4.trajectory.iterations.size());
  ASSERT_EQ(r1.trajectory.iterations.size(), r8.trajectory.iterations.size());
  for (size_t i = 0; i < r1.trajectory.iterations.size(); ++i) {
    EXPECT_EQ(r1.trajectory.iterations[i].train_f1,
              r4.trajectory.iterations[i].train_f1) << i;
    EXPECT_EQ(r1.trajectory.iterations[i].train_f1,
              r8.trajectory.iterations[i].train_f1) << i;
    EXPECT_EQ(r1.trajectory.iterations[i].train_mcc,
              r8.trajectory.iterations[i].train_mcc) << i;
  }
}

TEST_F(EngineLearnTest, SameTrajectoryWithValueStoreOnAndOff) {
  LearnResult with_store = Learn(1, /*use_value_store=*/true);
  LearnResult without_store = Learn(1, /*use_value_store=*/false);

  EXPECT_EQ(ToSexpr(with_store.best_rule), ToSexpr(without_store.best_rule));
  ASSERT_EQ(with_store.trajectory.iterations.size(),
            without_store.trajectory.iterations.size());
  for (size_t i = 0; i < with_store.trajectory.iterations.size(); ++i) {
    EXPECT_EQ(with_store.trajectory.iterations[i].train_f1,
              without_store.trajectory.iterations[i].train_f1) << i;
    EXPECT_EQ(with_store.trajectory.iterations[i].train_mcc,
              without_store.trajectory.iterations[i].train_mcc) << i;
  }
  EXPECT_GT(with_store.eval_stats.value_plans_compiled, 0u);
  EXPECT_GT(with_store.eval_stats.value_plan_hits, 0u);
  EXPECT_EQ(without_store.eval_stats.value_plans_compiled, 0u);
}

TEST_F(EngineLearnTest, CacheHitRatePositiveAfterGenerationTwo) {
  LearnResult result = Learn(1);
  const EngineStats& stats = result.eval_stats;
  // >= 3 generations ran; the distance cache must have been hit: every
  // generation after the first reuses comparison subtrees bred from the
  // previous one.
  ASSERT_GE(result.trajectory.iterations.size(), 3u);
  EXPECT_GT(stats.distance_row_hits, 0u);
  EXPECT_GT(stats.DistanceRowHitRate(), 0.0);
  // The counters are consistent.
  EXPECT_EQ(stats.fitness_hits + stats.fitness_misses, stats.rules_evaluated);
  EXPECT_GT(stats.subtree_hits, 0u);
}

}  // namespace
}  // namespace genlink
