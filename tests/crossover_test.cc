// Tests for the specialized crossover operators of Section 5.3. Each
// operator is checked for (1) its specific semantics on hand-built rules
// and (2) the property that arbitrary applications always produce valid,
// strongly typed rules.

#include <gtest/gtest.h>

#include "gp/crossover.h"
#include "rule/builder.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

LinkageRule RuleWithTransforms() {
  auto rule =
      RuleBuilder()
          .Aggregate("min")
          .Compare("levenshtein", 2.0, Prop("title").Lower().Tokenize(),
                   Prop("name").Lower(), 2.0)
          .Compare("date", 100.0, Prop("date"), Prop("released"), 3.0)
          .End()
          .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

LinkageRule OtherRuleWithTransforms() {
  auto rule =
      RuleBuilder()
          .Aggregate("wmean")
          .Compare("jaccard", 0.8, Prop("title").Stem(), Prop("name").Tokenize(),
                   4.0)
          .Compare("geographic", 1000.0, Prop("pos"), Prop("coord"), 5.0)
          .End()
          .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

// ------------------------------------------------------- semantics checks

TEST(ThresholdCrossoverTest, AveragesThresholds) {
  auto r1 = RuleBuilder()
                .Compare("levenshtein", 1.0, Prop("x"), Prop("y"))
                .Build();
  auto r2 = RuleBuilder()
                .Compare("levenshtein", 3.0, Prop("x"), Prop("y"))
                .Build();
  ASSERT_TRUE(r1.ok() && r2.ok());
  Rng rng(1);
  ThresholdCrossover op;
  auto child = op.Cross(*r1, *r2, rng);
  ASSERT_TRUE(child.has_value());
  EXPECT_DOUBLE_EQ(CollectComparisons(*child)[0]->threshold(), 2.0);
  // The parents are untouched.
  EXPECT_DOUBLE_EQ(CollectComparisons(*r1)[0]->threshold(), 1.0);
}

TEST(WeightCrossoverTest, AveragesWeights) {
  auto r1 = RuleBuilder()
                .Compare("levenshtein", 1.0, Prop("x"), Prop("y"), /*weight=*/2.0)
                .Build();
  auto r2 = RuleBuilder()
                .Compare("levenshtein", 1.0, Prop("x"), Prop("y"), /*weight=*/6.0)
                .Build();
  ASSERT_TRUE(r1.ok() && r2.ok());
  Rng rng(1);
  WeightCrossover op;
  auto child = op.Cross(*r1, *r2, rng);
  ASSERT_TRUE(child.has_value());
  EXPECT_DOUBLE_EQ(CollectComparisons(*child)[0]->weight(), 4.0);
}

TEST(FunctionCrossoverTest, SwapsAFunctionFromTheDonor) {
  auto r1 = RuleBuilder()
                .Compare("levenshtein", 2.5, Prop("x"), Prop("y"))
                .Build();
  auto r2 = RuleBuilder()
                .Compare("jaccard", 0.5, Prop("x"), Prop("y"))
                .Build();
  ASSERT_TRUE(r1.ok() && r2.ok());
  Rng rng(3);
  FunctionCrossover op;
  auto child = op.Cross(*r1, *r2, rng);
  ASSERT_TRUE(child.has_value());
  const ComparisonOperator* cmp = CollectComparisons(*child)[0];
  EXPECT_EQ(cmp->measure()->name(), "jaccard");
  // Threshold rescaled from levenshtein's range (5) to jaccard's (1):
  // 2.5 * 1/5 = 0.5.
  EXPECT_DOUBLE_EQ(cmp->threshold(), 0.5);
}

TEST(OperatorsCrossoverTest, ChildOperandsComeFromParents) {
  LinkageRule r1 = RuleWithTransforms();
  LinkageRule r2 = OtherRuleWithTransforms();
  Rng rng(5);
  OperatorsCrossover op;
  for (int i = 0; i < 50; ++i) {
    auto child = op.Cross(r1, r2, rng);
    ASSERT_TRUE(child.has_value());
    ASSERT_TRUE(child->Validate().ok()) << ToSexpr(*child);
    auto aggregations = CollectAggregations(*child);
    ASSERT_FALSE(aggregations.empty());
    // Between 1 and 4 comparisons survive the 50% filter.
    size_t n = CollectComparisons(*child).size();
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, 4u);
  }
}

TEST(OperatorsCrossoverTest, NotApplicableWithoutAggregations) {
  auto r1 = RuleBuilder()
                .Compare("levenshtein", 1.0, Prop("x"), Prop("y"))
                .Build();
  auto r2 = RuleBuilder()
                .Compare("levenshtein", 1.0, Prop("x"), Prop("y"))
                .Build();
  ASSERT_TRUE(r1.ok() && r2.ok());
  Rng rng(1);
  OperatorsCrossover op;
  EXPECT_FALSE(op.Cross(*r1, *r2, rng).has_value());
}

TEST(AggregationCrossoverTest, CanBuildHierarchies) {
  LinkageRule r1 = RuleWithTransforms();
  LinkageRule r2 = OtherRuleWithTransforms();
  Rng rng(7);
  AggregationCrossover op;
  bool saw_nested = false;
  for (int i = 0; i < 100; ++i) {
    auto child = op.Cross(r1, r2, rng);
    ASSERT_TRUE(child.has_value());
    ASSERT_TRUE(child->Validate().ok()) << ToSexpr(*child);
    if (CollectAggregations(*child).size() > 1) saw_nested = true;
  }
  // Replacing a comparison with the donor's aggregation nests; over 100
  // draws this must occur.
  EXPECT_TRUE(saw_nested);
}

TEST(TransformationCrossoverTest, RequiresTransformsInBothRules) {
  auto bare = RuleBuilder()
                  .Compare("levenshtein", 1.0, Prop("x"), Prop("y"))
                  .Build();
  ASSERT_TRUE(bare.ok());
  LinkageRule with = RuleWithTransforms();
  Rng rng(1);
  TransformationCrossover op;
  EXPECT_FALSE(op.Cross(*bare, with, rng).has_value());
  EXPECT_FALSE(op.Cross(with, *bare, rng).has_value());
}

TEST(TransformationCrossoverTest, ProducesValidChainsAndDedups) {
  LinkageRule r1 = RuleWithTransforms();
  LinkageRule r2 = OtherRuleWithTransforms();
  Rng rng(9);
  TransformationCrossover op;
  for (int i = 0; i < 200; ++i) {
    auto child = op.Cross(r1, r2, rng);
    if (!child.has_value()) continue;
    ASSERT_TRUE(child->Validate().ok()) << ToSexpr(*child);
    // Dedup property: no directly nested duplicated unary transform.
    for (const auto* tf : CollectTransforms(*child)) {
      for (const auto& input : tf->inputs()) {
        if (input->kind() == OperatorKind::kTransform) {
          const auto* child_tf = static_cast<const TransformOperator*>(input.get());
          if (tf->function()->arity() == 1 && child_tf->function()->arity() == 1) {
            EXPECT_NE(tf->function(), child_tf->function()) << ToSexpr(*child);
          }
        }
      }
    }
  }
}

TEST(SubtreeCrossoverTest, ProducesValidTypedRules) {
  LinkageRule r1 = RuleWithTransforms();
  LinkageRule r2 = OtherRuleWithTransforms();
  Rng rng(11);
  SubtreeCrossover op;
  for (int i = 0; i < 200; ++i) {
    auto child = op.Cross(r1, r2, rng);
    ASSERT_TRUE(child.has_value());
    EXPECT_TRUE(child->Validate().ok()) << ToSexpr(*child);
  }
}

// --------------------------------------------------------- operator sets

TEST(CrossoverSetTest, ModeControlsAvailableOperators) {
  auto names = [](const std::vector<std::unique_ptr<CrossoverOperator>>& ops) {
    std::vector<std::string> out;
    for (const auto& op : ops) out.emplace_back(op->name());
    return out;
  };
  auto contains = [](const std::vector<std::string>& v, const std::string& s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };

  auto full = names(MakeCrossoverSet(RepresentationMode::kFull));
  EXPECT_TRUE(contains(full, "transformation"));
  EXPECT_TRUE(contains(full, "aggregation"));
  EXPECT_TRUE(contains(full, "weight"));

  auto nonlinear = names(MakeCrossoverSet(RepresentationMode::kNonlinear));
  EXPECT_FALSE(contains(nonlinear, "transformation"));
  EXPECT_TRUE(contains(nonlinear, "aggregation"));

  auto linear = names(MakeCrossoverSet(RepresentationMode::kLinear));
  EXPECT_FALSE(contains(linear, "aggregation"));
  EXPECT_TRUE(contains(linear, "weight"));

  auto boolean = names(MakeCrossoverSet(RepresentationMode::kBoolean));
  EXPECT_FALSE(contains(boolean, "weight"));
  EXPECT_TRUE(contains(boolean, "function"));

  auto subtree = names(MakeCrossoverSet(RepresentationMode::kFull, true));
  EXPECT_EQ(subtree, std::vector<std::string>{"subtree"});
}

// --------------------------------------------- whole-set validity property

class CrossoverPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CrossoverPropertyTest, RandomApplicationsAlwaysValid) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  std::vector<CompatiblePair> pairs;
  pairs.push_back({"title", "name", DistanceRegistry::Default().Find("levenshtein"), 5});
  pairs.push_back({"date", "released", DistanceRegistry::Default().Find("date"), 3});
  pairs.push_back({"pos", "coord", DistanceRegistry::Default().Find("geographic"), 2});
  RuleGenerator generator(pairs, {"title", "date", "pos"},
                          {"name", "released", "coord"});
  auto ops = MakeCrossoverSet(RepresentationMode::kFull);

  // Evolve a small pool through random crossovers; every child that an
  // operator produces must validate.
  std::vector<LinkageRule> pool;
  for (int i = 0; i < 8; ++i) pool.push_back(generator.RandomRule(rng));
  for (int step = 0; step < 300; ++step) {
    const LinkageRule& p1 = pool[rng.PickIndex(pool.size())];
    const LinkageRule& p2 = pool[rng.PickIndex(pool.size())];
    const CrossoverOperator& op = *ops[rng.PickIndex(ops.size())];
    auto child = op.Cross(p1, p2, rng);
    if (!child.has_value()) continue;
    ASSERT_TRUE(child->Validate().ok())
        << op.name() << " produced: " << ToSexpr(*child);
    if (child->OperatorCount() <= 50) {
      pool[rng.PickIndex(pool.size())] = std::move(*child);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CrossoverPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace genlink
