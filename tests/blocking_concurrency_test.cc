// Regression coverage for concurrent TokenBlockingIndex::Candidates on
// a single shared index. The probe dedups through an epoch-stamped
// thread_local scratch; before the epoch stamps, two threads probing
// the same index (or two indexes from one thread interleaved across
// tasks) could observe each other's seen-marks and drop candidates.
// Runs under the `concurrency` label so the TSan CI leg picks it up.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <thread>
#include <vector>

#include "datasets/restaurant.h"
#include "datasets/synthetic.h"
#include "matcher/blocking.h"

namespace genlink {
namespace {

// Every thread probes every source entity against the same index and
// must reproduce the serial reference exactly — same candidates, same
// order, no drops and no duplicates.
template <typename Index>
void HammerSharedIndex(const MatchingTask& task, const Index& index,
                       size_t num_threads, size_t rounds) {
  const Dataset& source = task.Source();
  std::vector<std::vector<size_t>> reference(source.size());
  for (size_t i = 0; i < source.size(); ++i) {
    reference[i] = index.Candidates(source.entity(i), source.schema());
  }
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (size_t round = 0; round < rounds; ++round) {
        // Stagger the start offset per thread and round so threads are
        // probing different entities at the same instant.
        const size_t offset = (t * 131 + round * 17) % source.size();
        for (size_t step = 0; step < source.size(); ++step) {
          const size_t i = (offset + step) % source.size();
          if (index.Candidates(source.entity(i), source.schema()) !=
              reference[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(BlockingConcurrencyTest, ConcurrentCandidatesOnSharedTokenIndex) {
  const MatchingTask task = GenerateRestaurant(RestaurantConfig{});
  const TokenBlockingIndex index(task.Target());
  HammerSharedIndex(task, index, /*num_threads=*/8, /*rounds=*/3);
}

TEST(BlockingConcurrencyTest, ConcurrentCandidatesOnSharedShardedIndex) {
  const MatchingTask task = GenerateRestaurant(RestaurantConfig{});
  TokenBlockingOptions options;
  options.num_shards = 4;
  const ShardedTokenBlockingIndex index(task.Target(), {}, options);
  HammerSharedIndex(task, index, /*num_threads=*/8, /*rounds=*/3);
}

TEST(BlockingConcurrencyTest, TwoIndexesProbedByTheSamePool) {
  // The scratch is shared per thread across index instances; probing
  // two different indexes from the same threads must not cross-talk.
  SyntheticConfig config;
  config.num_entities = 1500;
  const MatchingTask synthetic = GenerateSynthetic(config);
  const MatchingTask restaurant = GenerateRestaurant(RestaurantConfig{});
  const TokenBlockingIndex synthetic_index(synthetic.Target());
  const TokenBlockingIndex restaurant_index(restaurant.Target());

  std::vector<std::vector<size_t>> synthetic_reference(synthetic.a.size());
  for (size_t i = 0; i < synthetic.a.size(); ++i) {
    synthetic_reference[i] = synthetic_index.Candidates(
        synthetic.Source().entity(i), synthetic.Source().schema());
  }
  std::vector<std::vector<size_t>> restaurant_reference(
      restaurant.Source().size());
  for (size_t i = 0; i < restaurant.Source().size(); ++i) {
    restaurant_reference[i] = restaurant_index.Candidates(
        restaurant.Source().entity(i), restaurant.Source().schema());
  }

  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      // Alternate between the two indexes on every probe so each
      // thread's scratch is reused across instances back-to-back.
      const size_t n = std::max(synthetic.a.size(), restaurant.Source().size());
      for (size_t step = 0; step < 2 * n; ++step) {
        if ((step + t) % 2 == 0) {
          const size_t i = (step + t * 131) % synthetic.a.size();
          if (synthetic_index.Candidates(synthetic.Source().entity(i),
                                         synthetic.Source().schema()) !=
              synthetic_reference[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          const size_t i = (step + t * 131) % restaurant.Source().size();
          if (restaurant_index.Candidates(restaurant.Source().entity(i),
                                          restaurant.Source().schema()) !=
              restaurant_reference[i]) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace genlink
