// Soundness of token blocking on the Restaurant data set: the candidate
// sets produced by TokenBlockingIndex must be a superset of the true
// matches found by exhaustive cross-product execution, i.e. blocking may
// only ever *add* work, never lose a link (blocking recall = 1.0).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "common/random.h"
#include "datasets/noise.h"
#include "datasets/restaurant.h"
#include "distance/string_distances.h"
#include "matcher/matcher.h"
#include "rule/builder.h"

namespace genlink {
namespace {

class BlockingSoundnessTest : public ::testing::Test {
 protected:
  void SetUp() override { task_ = GenerateRestaurant(RestaurantConfig{}); }

  // A realistic learned-style rule over the properties the paper's
  // Restaurant runs converge to (name + address + phone).
  LinkageRule MakeRule() {
    auto rule = RuleBuilder()
                    .Aggregate("wmean")
                    .Compare("levenshtein", 3.0, Prop("name").Lower(),
                             Prop("name").Lower())
                    .Compare("jaccard", 0.6, Prop("address").Lower().Tokenize(),
                             Prop("address").Lower().Tokenize())
                    .Compare("levenshtein", 2.0, Prop("phone"), Prop("phone"))
                    .End()
                    .Build();
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    return rule.ok() ? std::move(*rule) : LinkageRule();
  }

  static std::set<std::pair<std::string, std::string>> ToPairs(
      const std::vector<GeneratedLink>& links) {
    std::set<std::pair<std::string, std::string>> pairs;
    for (const auto& link : links) pairs.insert({link.id_a, link.id_b});
    return pairs;
  }

  MatchingTask task_;
};

TEST_F(BlockingSoundnessTest, CandidatesSupersetOfCrossProductMatches) {
  LinkageRule rule = MakeRule();
  MatchOptions exhaustive;
  exhaustive.use_blocking = false;
  MatchOptions blocked;
  blocked.use_blocking = true;

  auto full = ToPairs(GenerateLinks(rule, task_.Source(), task_.Target(),
                                    exhaustive));
  auto with_blocking =
      ToPairs(GenerateLinks(rule, task_.Source(), task_.Target(), blocked));

  // Every link the exhaustive cross product finds must survive blocking.
  ASSERT_FALSE(full.empty());
  for (const auto& link : full) {
    EXPECT_TRUE(with_blocking.count(link))
        << "blocking dropped " << link.first << " - " << link.second;
  }
  // And blocking cannot invent links either: the sets are equal.
  EXPECT_EQ(full, with_blocking);
}

TEST_F(BlockingSoundnessTest, CandidateSetsContainReferenceMatches) {
  // Index the target over the rule's target-side properties, exactly as
  // the matcher does, and probe with every positive reference link.
  LinkageRule rule = MakeRule();
  TokenBlockingIndex index(task_.Target(), TargetProperties(rule));
  for (const ReferenceLink& link : task_.links.positives()) {
    const Entity* a = task_.Source().FindEntity(link.id_a);
    ASSERT_NE(a, nullptr);
    bool found = false;
    for (size_t j : index.Candidates(*a, task_.Source().schema())) {
      if (task_.Target().entity(j).id() == link.id_b) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "blocking lost reference match " << link.id_a
                       << " - " << link.id_b;
  }
}

TEST_F(BlockingSoundnessTest, BlockingRecallIsOneOnReferenceLinks) {
  LinkageRule rule = MakeRule();
  TokenBlockingIndex index(task_.Target(), TargetProperties(rule));
  EXPECT_DOUBLE_EQ(BlockingRecall(index, task_.Source(), task_.Target(),
                                  task_.links),
                   1.0);
}

// An all-properties index (what `match` uses before a rule is known to
// read specific properties) is at least as complete.
TEST_F(BlockingSoundnessTest, AllPropertyIndexRecallIsOne) {
  TokenBlockingIndex index(task_.Target());
  EXPECT_DOUBLE_EQ(BlockingRecall(index, task_.Source(), task_.Target(),
                                  task_.links),
                   1.0);
}

// ---------------------------------------------------------------------------
// The Levenshtein prefilters (length + prefix masks) run before the
// kernels inside the candidate loop. Soundness means: a rejected pair's
// true edit distance always exceeds the bound, so skipping it is
// indistinguishable from scoring it — ThresholdedScore maps every
// distance > bound to similarity 0 either way.

TEST(LevenshteinPrefilterTest, FuzzNeverDropsAPairWithinBound) {
  Rng rng(20260807);
  const double bounds[] = {0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.5};
  for (int iter = 0; iter < 10000; ++iter) {
    // A base word and a mutated partner: typos keep many pairs near the
    // bound boundary, fresh words and prefix/suffix chops exercise the
    // far side and length mismatches.
    std::string a = RandomWord(1 + rng.PickIndex(16), rng);
    std::string b;
    switch (rng.PickIndex(4)) {
      case 0:
        b = InjectTypos(a, 1 + rng.PickIndex(4), rng);
        break;
      case 1:
        b = RandomWord(1 + rng.PickIndex(16), rng);
        break;
      case 2:
        b = a.substr(rng.PickIndex(a.size() + 1));
        break;
      default:
        b = a + RandomWord(1 + rng.PickIndex(6), rng);
        break;
    }
    const int distance = LevenshteinEditDistanceReference(a, b);
    for (const double bound : bounds) {
      if (!PassesLevenshteinLengthFilter(a, b, bound)) {
        EXPECT_GT(static_cast<double>(distance), bound)
            << "length filter dropped \"" << a << "\" / \"" << b << "\"";
      }
      if (!PassesLevenshteinPrefixFilter(a, b, bound)) {
        EXPECT_GT(static_cast<double>(distance), bound)
            << "prefix filter dropped \"" << a << "\" / \"" << b << "\"";
      }
    }
  }
}

TEST(LevenshteinPrefilterTest, FuzzBoundedDistanceStaysBitIdentical) {
  // End-to-end through the measure: the filtered BoundedValueDistance
  // must give the same thresholded similarity as the reference kernel
  // for every pair and bound.
  Rng rng(777);
  LevenshteinDistance measure;
  const double bounds[] = {0.0, 0.5, 1.0, 2.0, 3.0, 5.0, 7.5};
  for (int iter = 0; iter < 10000; ++iter) {
    std::string a = RandomWord(1 + rng.PickIndex(14), rng);
    std::string b = rng.Bernoulli(0.5)
                        ? InjectTypos(a, 1 + rng.PickIndex(5), rng)
                        : RandomWord(1 + rng.PickIndex(14), rng);
    const double distance =
        static_cast<double>(LevenshteinEditDistanceReference(a, b));
    for (const double bound : bounds) {
      const double bounded = measure.BoundedValueDistance(a, b, bound);
      if (distance <= bound) {
        // Within the bound the exact distance must come back.
        EXPECT_EQ(bounded, distance)
            << "\"" << a << "\" / \"" << b << "\" bound " << bound;
      } else {
        // Beyond it, any value > bound is allowed (the contract
        // ThresholdedScore relies on), but it must exceed the bound.
        EXPECT_GT(bounded, bound)
            << "\"" << a << "\" / \"" << b << "\" bound " << bound;
      }
    }
  }
}

}  // namespace
}  // namespace genlink
