// Soundness of token blocking on the Restaurant data set: the candidate
// sets produced by TokenBlockingIndex must be a superset of the true
// matches found by exhaustive cross-product execution, i.e. blocking may
// only ever *add* work, never lose a link (blocking recall = 1.0).

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <utility>

#include "datasets/restaurant.h"
#include "matcher/matcher.h"
#include "rule/builder.h"

namespace genlink {
namespace {

class BlockingSoundnessTest : public ::testing::Test {
 protected:
  void SetUp() override { task_ = GenerateRestaurant(RestaurantConfig{}); }

  // A realistic learned-style rule over the properties the paper's
  // Restaurant runs converge to (name + address + phone).
  LinkageRule MakeRule() {
    auto rule = RuleBuilder()
                    .Aggregate("wmean")
                    .Compare("levenshtein", 3.0, Prop("name").Lower(),
                             Prop("name").Lower())
                    .Compare("jaccard", 0.6, Prop("address").Lower().Tokenize(),
                             Prop("address").Lower().Tokenize())
                    .Compare("levenshtein", 2.0, Prop("phone"), Prop("phone"))
                    .End()
                    .Build();
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    return rule.ok() ? std::move(*rule) : LinkageRule();
  }

  static std::set<std::pair<std::string, std::string>> ToPairs(
      const std::vector<GeneratedLink>& links) {
    std::set<std::pair<std::string, std::string>> pairs;
    for (const auto& link : links) pairs.insert({link.id_a, link.id_b});
    return pairs;
  }

  MatchingTask task_;
};

TEST_F(BlockingSoundnessTest, CandidatesSupersetOfCrossProductMatches) {
  LinkageRule rule = MakeRule();
  MatchOptions exhaustive;
  exhaustive.use_blocking = false;
  MatchOptions blocked;
  blocked.use_blocking = true;

  auto full = ToPairs(GenerateLinks(rule, task_.Source(), task_.Target(),
                                    exhaustive));
  auto with_blocking =
      ToPairs(GenerateLinks(rule, task_.Source(), task_.Target(), blocked));

  // Every link the exhaustive cross product finds must survive blocking.
  ASSERT_FALSE(full.empty());
  for (const auto& link : full) {
    EXPECT_TRUE(with_blocking.count(link))
        << "blocking dropped " << link.first << " - " << link.second;
  }
  // And blocking cannot invent links either: the sets are equal.
  EXPECT_EQ(full, with_blocking);
}

TEST_F(BlockingSoundnessTest, CandidateSetsContainReferenceMatches) {
  // Index the target over the rule's target-side properties, exactly as
  // the matcher does, and probe with every positive reference link.
  LinkageRule rule = MakeRule();
  TokenBlockingIndex index(task_.Target(), TargetProperties(rule));
  for (const ReferenceLink& link : task_.links.positives()) {
    const Entity* a = task_.Source().FindEntity(link.id_a);
    ASSERT_NE(a, nullptr);
    bool found = false;
    for (size_t j : index.Candidates(*a, task_.Source().schema())) {
      if (task_.Target().entity(j).id() == link.id_b) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "blocking lost reference match " << link.id_a
                       << " - " << link.id_b;
  }
}

TEST_F(BlockingSoundnessTest, BlockingRecallIsOneOnReferenceLinks) {
  LinkageRule rule = MakeRule();
  TokenBlockingIndex index(task_.Target(), TargetProperties(rule));
  EXPECT_DOUBLE_EQ(BlockingRecall(index, task_.Source(), task_.Target(),
                                  task_.links),
                   1.0);
}

// An all-properties index (what `match` uses before a rule is known to
// read specific properties) is at least as complete.
TEST_F(BlockingSoundnessTest, AllPropertyIndexRecallIsOne) {
  TokenBlockingIndex index(task_.Target());
  EXPECT_DOUBLE_EQ(BlockingRecall(index, task_.Source(), task_.Target(),
                                  task_.links),
                   1.0);
}

}  // namespace
}  // namespace genlink
