// Unit tests for the transformation library (Table 1 of the paper plus
// extensions).

#include <gtest/gtest.h>

#include "transform/registry.h"
#include "transform/string_transforms.h"
#include "transform/structural_transforms.h"

namespace genlink {
namespace {

ValueSet Apply1(const Transformation& t, const ValueSet& in) {
  std::vector<ValueSet> inputs{in};
  return t.Apply(inputs);
}

TEST(TransformTest, LowerCase) {
  LowerCaseTransform t;
  EXPECT_EQ(Apply1(t, {"iPod", "IPOD"}), (ValueSet{"ipod", "ipod"}));
  EXPECT_TRUE(Apply1(t, {}).empty());
}

TEST(TransformTest, LowerCaseIdempotent) {
  LowerCaseTransform t;
  ValueSet once = Apply1(t, {"MiXeD CaSe 42!"});
  EXPECT_EQ(Apply1(t, once), once);
}

TEST(TransformTest, UpperCase) {
  UpperCaseTransform t;
  EXPECT_EQ(Apply1(t, {"iPod"}), (ValueSet{"IPOD"}));
}

TEST(TransformTest, Tokenize) {
  TokenizeTransform t;
  EXPECT_EQ(Apply1(t, {"hello world", "foo-bar"}),
            (ValueSet{"hello", "world", "foo", "bar"}));
  EXPECT_TRUE(Apply1(t, {"..."}).empty());
}

TEST(TransformTest, StripUriPrefix) {
  StripUriPrefixTransform t;
  EXPECT_EQ(Apply1(t, {"http://dbpedia.org/resource/New_York_City"}),
            (ValueSet{"New York City"}));
  EXPECT_EQ(Apply1(t, {"https://example.org/page#Fragment"}),
            (ValueSet{"Fragment"}));
  // Non-URIs pass through unchanged.
  EXPECT_EQ(Apply1(t, {"plain value"}), (ValueSet{"plain value"}));
}

TEST(TransformTest, Concatenate) {
  ConcatenateTransform t;
  std::vector<ValueSet> inputs{{"john"}, {"smith"}};
  EXPECT_EQ(t.Apply(inputs), (ValueSet{"john smith"}));
  EXPECT_EQ(t.arity(), 2u);

  // Cross product for multi-valued inputs.
  std::vector<ValueSet> multi{{"a", "b"}, {"x"}};
  EXPECT_EQ(t.Apply(multi), (ValueSet{"a x", "b x"}));

  // Missing side falls back to the present side.
  std::vector<ValueSet> left_only{{"solo"}, {}};
  EXPECT_EQ(t.Apply(left_only), (ValueSet{"solo"}));
  std::vector<ValueSet> right_only{{}, {"solo"}};
  EXPECT_EQ(t.Apply(right_only), (ValueSet{"solo"}));
}

TEST(TransformTest, Trim) {
  TrimTransform t;
  EXPECT_EQ(Apply1(t, {"  padded \t"}), (ValueSet{"padded"}));
}

TEST(TransformTest, StripPunctuationTransform) {
  StripPunctuationTransform t;
  EXPECT_EQ(Apply1(t, {"it's a test."}), (ValueSet{"its a test"}));
}

TEST(TransformTest, RemoveDashes) {
  RemoveDashesTransform t;
  EXPECT_EQ(Apply1(t, {"50-78-2"}), (ValueSet{"50782"}));
}

TEST(TransformTest, StemLowercasesAndStems) {
  StemTransform t;
  EXPECT_EQ(Apply1(t, {"Matching Records"}), (ValueSet{"match record"}));
}

TEST(TransformTest, SoundexTransform) {
  SoundexTransform t;
  EXPECT_EQ(Apply1(t, {"Robert", "Rupert"}), (ValueSet{"R163", "R163"}));
}

TEST(TransformRegistryTest, Table1TransformationsPresent) {
  const auto& reg = TransformRegistry::Default();
  for (const char* name :
       {"lowerCase", "tokenize", "stripUriPrefix", "concatenate", "stem"}) {
    EXPECT_NE(reg.Find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.Find("unknown"), nullptr);
  EXPECT_GE(reg.transformations().size(), 10u);
}

TEST(TransformRegistryTest, UnaryListExcludesConcatenate) {
  auto unary = TransformRegistry::Default().UnaryTransformations();
  for (const auto* t : unary) {
    EXPECT_EQ(t->arity(), 1u) << t->name();
    EXPECT_NE(t->name(), "concatenate");
  }
  EXPECT_GE(unary.size(), 9u);
}

// Chaining transformations works like the paper's chains
// (stripUriPrefix -> lowerCase -> tokenize).
TEST(TransformTest, ChainingNormalizesUris) {
  const auto& reg = TransformRegistry::Default();
  ValueSet v{"http://dbpedia.org/resource/New_York_City"};
  v = Apply1(*reg.Find("stripUriPrefix"), v);
  v = Apply1(*reg.Find("lowerCase"), v);
  std::vector<ValueSet> in{v};
  v = reg.Find("tokenize")->Apply(in);
  EXPECT_EQ(v, (ValueSet{"new", "york", "city"}));
}

}  // namespace
}  // namespace genlink
