// Round-trip tests for the s-expression rule serialization, including a
// property sweep over randomly generated rules.

#include <gtest/gtest.h>

#include "gp/rule_generator.h"
#include "rule/builder.h"
#include "rule/parse.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

LinkageRule SampleRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("levenshtein", 1.0, Prop("label").Lower(), Prop("label"))
                  .Compare("geographic", 50.0, Prop("point"), Prop("coord"))
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

TEST(SerializeTest, RendersAllOperators) {
  std::string sexpr = ToSexpr(SampleRule());
  EXPECT_NE(sexpr.find("(aggregate min"), std::string::npos);
  EXPECT_NE(sexpr.find("(compare levenshtein :t 1"), std::string::npos);
  EXPECT_NE(sexpr.find("(transform lowerCase"), std::string::npos);
  EXPECT_NE(sexpr.find("(property \"label\")"), std::string::npos);
  EXPECT_NE(sexpr.find("(compare geographic :t 50"), std::string::npos);
}

TEST(SerializeTest, PrettyPrintIsMultiLine) {
  std::string pretty = ToPrettySexpr(SampleRule());
  EXPECT_NE(pretty.find('\n'), std::string::npos);
}

TEST(SerializeTest, EmptyRule) {
  EXPECT_EQ(ToSexpr(LinkageRule()), "(empty)");
}

TEST(ParseTest, RoundTripPreservesStructure) {
  LinkageRule original = SampleRule();
  auto reparsed = ParseRule(ToSexpr(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(original.StructuralHash(), reparsed->StructuralHash());
  EXPECT_EQ(original.OperatorCount(), reparsed->OperatorCount());
}

TEST(ParseTest, PrettyFormRoundTrips) {
  LinkageRule original = SampleRule();
  auto reparsed = ParseRule(ToPrettySexpr(original));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(original.StructuralHash(), reparsed->StructuralHash());
}

TEST(ParseTest, QuotedPropertyNamesWithEscapes) {
  auto rule = ParseRule(
      "(compare equality :t 0.5 :w 1 (property \"a \\\"quoted\\\" name\") "
      "(property \"plain\"))");
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  auto comparisons = CollectComparisons(*rule);
  ASSERT_EQ(comparisons.size(), 1u);
  EXPECT_EQ(static_cast<const PropertyOperator*>(comparisons[0]->source())->property(),
            "a \"quoted\" name");
}

TEST(ParseTest, ErrorsAreReported) {
  EXPECT_FALSE(ParseRule("").ok());
  EXPECT_FALSE(ParseRule("(compare levenshtein :t 1").ok());            // truncated
  EXPECT_FALSE(ParseRule("(compare nosuch :t 1 :w 1 (property \"a\") "
                         "(property \"b\"))").ok());                    // bad measure
  EXPECT_FALSE(ParseRule("(aggregate min :w 1)").ok());                 // empty agg
  EXPECT_FALSE(ParseRule("(compare levenshtein :t x :w 1 (property \"a\") "
                         "(property \"b\"))").ok());                    // bad number
  EXPECT_FALSE(ParseRule("(frobnicate)").ok());                         // bad head
  // Trailing garbage after a complete rule.
  EXPECT_FALSE(ParseRule("(compare levenshtein :t 1 :w 1 (property \"a\") "
                         "(property \"b\")) extra").ok());
}

TEST(ParseTest, TransformArityIsChecked) {
  // concatenate requires two inputs.
  EXPECT_FALSE(ParseRule("(compare levenshtein :t 1 :w 1 "
                         "(transform concatenate (property \"a\")) "
                         "(property \"b\"))").ok());
}

// Property test: every randomly generated rule round-trips through
// serialize -> parse with identical structural hash.
class SerializeRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(SerializeRoundTripTest, RandomRulesRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<CompatiblePair> pairs;
  pairs.push_back({"title", "name", DistanceRegistry::Default().Find("levenshtein"), 3});
  pairs.push_back({"date", "released", DistanceRegistry::Default().Find("date"), 2});
  pairs.push_back({"pos", "coord", DistanceRegistry::Default().Find("geographic"), 1});
  RuleGenerator generator(pairs, {"title", "date", "pos"},
                          {"name", "released", "coord"});
  for (int i = 0; i < 50; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    ASSERT_TRUE(rule.Validate().ok());
    auto reparsed = ParseRule(ToSexpr(rule));
    ASSERT_TRUE(reparsed.ok())
        << reparsed.status().ToString() << "\n" << ToSexpr(rule);
    EXPECT_EQ(rule.StructuralHash(), reparsed->StructuralHash())
        << ToSexpr(rule);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializeRoundTripTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace genlink
