// Determinism guarantees: identical seeds reproduce identical results
// regardless of thread count; genetic operators never mutate their
// parents; generators are stable across invocations. These back the
// reproducibility claims of the README.

#include <gtest/gtest.h>

#include "datasets/cora.h"
#include "datasets/sider_drugbank.h"
#include "gp/crossover.h"
#include "gp/genlink.h"
#include "gp/islands.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

// ----------------------------------------------- thread-count invariance

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoraConfig config;
    config.scale = 0.05;
    task_ = GenerateCora(config);
  }

  MatchingTask task_;
};

TEST_F(ThreadInvarianceTest, LearnResultIndependentOfThreadCount) {
  auto run = [&](size_t threads) {
    GenLinkConfig config;
    config.population_size = 40;
    config.max_iterations = 6;
    config.num_threads = threads;
    GenLink learner(task_.Source(), task_.Target(), config);
    Rng rng(77);
    auto result = learner.Learn(task_.links, nullptr, rng);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->best_rule.StructuralHash() : 0;
  };
  uint64_t single = run(1);
  uint64_t quad = run(4);
  EXPECT_EQ(single, quad);
}

TEST_F(ThreadInvarianceTest, PopulationEvaluationIndependentOfThreadCount) {
  auto pairs = task_.links.Resolve(task_.Source(), task_.Target());
  ASSERT_TRUE(pairs.ok());
  FitnessEvaluator evaluator(*pairs, task_.Source().schema(),
                             task_.Target().schema());

  auto build_population = [&] {
    std::vector<CompatiblePair> seeded;
    seeded.push_back(
        {"title", "title", DistanceRegistry::Default().Find("levenshtein"), 5});
    RuleGenerator generator(seeded, {"title"}, {"title"});
    Rng rng(5);
    Population population;
    for (int i = 0; i < 64; ++i) {
      population.Add(Individual{generator.RandomRule(rng), {}, false});
    }
    return population;
  };

  Population p1 = build_population();
  Population p4 = build_population();
  EngineConfig config1, config4;
  config1.num_threads = 1;
  config4.num_threads = 4;
  EvaluationEngine engine1(*pairs, task_.Source().schema(),
                           task_.Target().schema(), {}, config1);
  EvaluationEngine engine4(*pairs, task_.Source().schema(),
                           task_.Target().schema(), {}, config4);
  EvaluatePopulation(p1, engine1);
  EvaluatePopulation(p4, engine4);
  ASSERT_EQ(p1.size(), p4.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1[i].fitness.fitness, p4[i].fitness.fitness) << i;
  }
  // And both match the serial reference evaluator bit for bit.
  for (size_t i = 0; i < p1.size(); ++i) {
    FitnessResult serial = evaluator.Evaluate(p1[i].rule);
    EXPECT_EQ(p1[i].fitness.fitness, serial.fitness) << i;
    EXPECT_EQ(p1[i].fitness.mcc, serial.mcc) << i;
  }
}

// ------------------------------------------------ island-model invariance

// A process-stable fingerprint of a LearnResult: the best rule's
// structural hash plus every deterministic number of the merged and
// per-island trajectories. Two runs with equal fingerprints learned the
// same rules along the same path (wall-clock seconds excluded).
struct LearnFingerprint {
  uint64_t rule_hash = 0;
  double initial_mean_f1 = 0.0;
  std::string best_rule_sexpr;
  std::vector<double> numbers;

  bool operator==(const LearnFingerprint&) const = default;
};

LearnFingerprint Fingerprint(const LearnResult& result) {
  LearnFingerprint fp;
  fp.rule_hash = result.best_rule.StructuralHash();
  fp.initial_mean_f1 = result.initial_population_mean_f1;
  fp.best_rule_sexpr = result.trajectory.best_rule_sexpr;
  auto add_trajectory = [&](const RunTrajectory& trajectory) {
    for (const IterationStats& stats : trajectory.iterations) {
      fp.numbers.push_back(static_cast<double>(stats.iteration));
      fp.numbers.push_back(stats.train_f1);
      fp.numbers.push_back(stats.val_f1);
      fp.numbers.push_back(stats.train_mcc);
      fp.numbers.push_back(stats.val_mcc);
      fp.numbers.push_back(stats.mean_operators);
      fp.numbers.push_back(stats.best_operators);
    }
  };
  add_trajectory(result.trajectory);
  for (const RunTrajectory& island : result.island_trajectories) {
    add_trajectory(island);
  }
  return fp;
}

class IslandDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoraConfig config;
    config.scale = 0.05;
    task_ = GenerateCora(config);
  }

  // One learning run with a fixed master seed: train on fold 0,
  // validate on fold 1 (so val_* numbers are part of the fingerprint).
  LearnFingerprint Run(size_t islands, size_t threads,
                       size_t migration_interval) {
    GenLinkConfig config;
    config.population_size = 32;
    config.max_iterations = 5;
    config.num_threads = threads;
    config.num_islands = islands;
    config.migration_interval = migration_interval;
    config.migration_size = 2;
    Rng rng(2024);
    auto folds = task_.links.SplitFolds(2, rng);
    GenLink learner(task_.Source(), task_.Target(), config);
    auto result = learner.Learn(folds[0], &folds[1], rng);
    EXPECT_TRUE(result.ok());
    return result.ok() ? Fingerprint(*result) : LearnFingerprint{};
  }

  MatchingTask task_;
};

// Same master seed => identical best rule and identical merged AND
// per-island trajectories at any thread count, for one, two and four
// islands. With migration every 2 generations of a 5-generation run,
// this also proves migration (which replaces concrete individuals) is
// independent of how breeding tasks were scheduled across threads.
TEST_F(IslandDeterminismTest, ResultIndependentOfThreadCount) {
  for (size_t islands : {1u, 2u, 4u}) {
    LearnFingerprint single = Run(islands, 1, /*migration_interval=*/2);
    EXPECT_FALSE(single.numbers.empty());
    EXPECT_EQ(single, Run(islands, 4, 2)) << islands << " islands, 4 threads";
    EXPECT_EQ(single, Run(islands, 8, 2)) << islands << " islands, 8 threads";
  }
}

// Migration every generation (the most scheduling-sensitive setting):
// the whole ring still replays identically across thread counts.
TEST_F(IslandDeterminismTest, PerGenerationMigrationIsDeterministic) {
  LearnFingerprint single = Run(4, 1, /*migration_interval=*/1);
  EXPECT_EQ(single, Run(4, 8, 1));
}

// The island engine with num_islands = 1 is the production path behind
// GenLink::Learn; it must reproduce the legacy single-population loop
// bit for bit at any thread count (the refactor gate).
TEST_F(IslandDeterminismTest, SingleIslandMatchesLegacySinglePopulation) {
  GenLinkConfig config;
  config.population_size = 32;
  config.max_iterations = 5;
  for (size_t threads : {1u, 4u}) {
    config.num_threads = threads;

    Rng legacy_rng(2024);
    auto legacy_folds = task_.links.SplitFolds(2, legacy_rng);
    auto legacy = LearnSinglePopulation(task_.Source(), task_.Target(), config,
                                        legacy_folds[0], &legacy_folds[1],
                                        legacy_rng);
    ASSERT_TRUE(legacy.ok());

    Rng island_rng(2024);
    auto island_folds = task_.links.SplitFolds(2, island_rng);
    auto island = LearnIslands(task_.Source(), task_.Target(), config,
                               island_folds[0], &island_folds[1], island_rng);
    ASSERT_TRUE(island.ok());

    EXPECT_EQ(Fingerprint(*legacy), Fingerprint(*island))
        << "at " << threads << " threads";
    EXPECT_EQ(ToSexpr(legacy->best_rule), ToSexpr(island->best_rule));
    ASSERT_EQ(island->island_trajectories.size(), 1u);
  }
}

// Multiple islands explore genuinely different populations: with
// distinct per-island RNG streams the islands must not all evolve the
// same trajectory (they may still converge to the same best rule).
TEST_F(IslandDeterminismTest, IslandsEvolveIndependentPopulations) {
  GenLinkConfig config;
  config.population_size = 32;
  config.max_iterations = 3;
  config.num_islands = 3;
  config.migration_interval = 0;  // isolation: no mixing at all
  Rng rng(5);
  auto result = LearnIslands(task_.Source(), task_.Target(), config,
                             task_.links, nullptr, rng);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->island_trajectories.size(), 3u);
  bool any_difference = false;
  for (size_t i = 1; i < result->island_trajectories.size(); ++i) {
    if (result->island_trajectories[i].best_rule_sexpr !=
        result->island_trajectories[0].best_rule_sexpr) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference)
      << "all islands evolved identical best rules from distinct streams";
}

// ------------------------------------------------- parent immutability

TEST(ParentImmutabilityTest, CrossoverNeverMutatesParents) {
  Rng rng(13);
  std::vector<CompatiblePair> pairs;
  const auto& reg = DistanceRegistry::Default();
  pairs.push_back({"title", "name", reg.Find("levenshtein"), 5});
  pairs.push_back({"date", "released", reg.Find("date"), 3});
  RuleGenerator generator(pairs, {"title", "date"}, {"name", "released"});
  auto operators = MakeCrossoverSet(RepresentationMode::kFull);
  operators.push_back(std::make_unique<SubtreeCrossover>());

  for (int i = 0; i < 200; ++i) {
    LinkageRule r1 = generator.RandomRule(rng);
    LinkageRule r2 = generator.RandomRule(rng);
    uint64_t h1 = r1.StructuralHash();
    uint64_t h2 = r2.StructuralHash();
    const CrossoverOperator& op = *operators[rng.PickIndex(operators.size())];
    auto child = op.Cross(r1, r2, rng);
    EXPECT_EQ(r1.StructuralHash(), h1)
        << op.name() << " mutated its first parent";
    EXPECT_EQ(r2.StructuralHash(), h2)
        << op.name() << " mutated its second parent";
    if (child.has_value()) {
      // And the child is detached: mutating it leaves the parents alone.
      auto comparisons = CollectComparisons(*child);
      if (!comparisons.empty()) {
        comparisons[0]->set_threshold(12345.0);
        EXPECT_EQ(r1.StructuralHash(), h1);
        EXPECT_EQ(r2.StructuralHash(), h2);
      }
    }
  }
}

// ------------------------------------------------- generator determinism

TEST(GeneratorDeterminismTest, IdenticalConfigIdenticalData) {
  SiderDrugbankConfig config;
  config.scale = 0.05;
  MatchingTask t1 = GenerateSiderDrugbank(config);
  MatchingTask t2 = GenerateSiderDrugbank(config);
  ASSERT_EQ(t1.a.size(), t2.a.size());
  ASSERT_EQ(t1.b.size(), t2.b.size());
  for (size_t i = 0; i < t1.a.size(); ++i) {
    EXPECT_EQ(t1.a.entity(i).id(), t2.a.entity(i).id());
    for (PropertyId p = 0; p < t1.a.schema().NumProperties(); ++p) {
      EXPECT_EQ(t1.a.entity(i).Values(p), t2.a.entity(i).Values(p));
    }
  }
  ASSERT_EQ(t1.links.positives().size(), t2.links.positives().size());
  for (size_t i = 0; i < t1.links.positives().size(); ++i) {
    EXPECT_EQ(t1.links.positives()[i], t2.links.positives()[i]);
  }
}

TEST(GeneratorDeterminismTest, DifferentSeedsDifferentData) {
  SiderDrugbankConfig c1, c2;
  c1.scale = c2.scale = 0.05;
  c2.seed = c1.seed + 1;
  MatchingTask t1 = GenerateSiderDrugbank(c1);
  MatchingTask t2 = GenerateSiderDrugbank(c2);
  auto name = t1.a.schema().FindProperty("drugName");
  ASSERT_TRUE(name.has_value());
  bool any_diff = false;
  for (size_t i = 0; i < std::min(t1.a.size(), t2.a.size()); ++i) {
    if (t1.a.entity(i).Values(*name) != t2.a.entity(i).Values(*name)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

// Serialization is deterministic: the same rule always renders to the
// same bytes (a requirement for reproducible rule files).
TEST(SerializationDeterminismTest, StableBytes) {
  Rng rng(99);
  std::vector<CompatiblePair> pairs;
  pairs.push_back(
      {"x", "y", DistanceRegistry::Default().Find("levenshtein"), 1});
  RuleGenerator generator(pairs, {"x"}, {"y"});
  for (int i = 0; i < 30; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    EXPECT_EQ(ToSexpr(rule), ToSexpr(rule));
    EXPECT_EQ(ToPrettySexpr(rule), ToPrettySexpr(rule));
    LinkageRule clone = rule.Clone();
    EXPECT_EQ(ToSexpr(rule), ToSexpr(clone));
  }
}

}  // namespace
}  // namespace genlink
