// Determinism guarantees: identical seeds reproduce identical results
// regardless of thread count; genetic operators never mutate their
// parents; generators are stable across invocations. These back the
// reproducibility claims of the README.

#include <gtest/gtest.h>

#include "datasets/cora.h"
#include "datasets/sider_drugbank.h"
#include "gp/crossover.h"
#include "gp/genlink.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

// ----------------------------------------------- thread-count invariance

class ThreadInvarianceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    CoraConfig config;
    config.scale = 0.05;
    task_ = GenerateCora(config);
  }

  MatchingTask task_;
};

TEST_F(ThreadInvarianceTest, LearnResultIndependentOfThreadCount) {
  auto run = [&](size_t threads) {
    GenLinkConfig config;
    config.population_size = 40;
    config.max_iterations = 6;
    config.num_threads = threads;
    GenLink learner(task_.Source(), task_.Target(), config);
    Rng rng(77);
    auto result = learner.Learn(task_.links, nullptr, rng);
    EXPECT_TRUE(result.ok());
    return result.ok() ? result->best_rule.StructuralHash() : 0;
  };
  uint64_t single = run(1);
  uint64_t quad = run(4);
  EXPECT_EQ(single, quad);
}

TEST_F(ThreadInvarianceTest, PopulationEvaluationIndependentOfThreadCount) {
  auto pairs = task_.links.Resolve(task_.Source(), task_.Target());
  ASSERT_TRUE(pairs.ok());
  FitnessEvaluator evaluator(*pairs, task_.Source().schema(),
                             task_.Target().schema());

  auto build_population = [&] {
    std::vector<CompatiblePair> seeded;
    seeded.push_back(
        {"title", "title", DistanceRegistry::Default().Find("levenshtein"), 5});
    RuleGenerator generator(seeded, {"title"}, {"title"});
    Rng rng(5);
    Population population;
    for (int i = 0; i < 64; ++i) {
      population.Add(Individual{generator.RandomRule(rng), {}, false});
    }
    return population;
  };

  Population p1 = build_population();
  Population p4 = build_population();
  EngineConfig config1, config4;
  config1.num_threads = 1;
  config4.num_threads = 4;
  EvaluationEngine engine1(*pairs, task_.Source().schema(),
                           task_.Target().schema(), {}, config1);
  EvaluationEngine engine4(*pairs, task_.Source().schema(),
                           task_.Target().schema(), {}, config4);
  EvaluatePopulation(p1, engine1);
  EvaluatePopulation(p4, engine4);
  ASSERT_EQ(p1.size(), p4.size());
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_DOUBLE_EQ(p1[i].fitness.fitness, p4[i].fitness.fitness) << i;
  }
  // And both match the serial reference evaluator bit for bit.
  for (size_t i = 0; i < p1.size(); ++i) {
    FitnessResult serial = evaluator.Evaluate(p1[i].rule);
    EXPECT_EQ(p1[i].fitness.fitness, serial.fitness) << i;
    EXPECT_EQ(p1[i].fitness.mcc, serial.mcc) << i;
  }
}

// ------------------------------------------------- parent immutability

TEST(ParentImmutabilityTest, CrossoverNeverMutatesParents) {
  Rng rng(13);
  std::vector<CompatiblePair> pairs;
  const auto& reg = DistanceRegistry::Default();
  pairs.push_back({"title", "name", reg.Find("levenshtein"), 5});
  pairs.push_back({"date", "released", reg.Find("date"), 3});
  RuleGenerator generator(pairs, {"title", "date"}, {"name", "released"});
  auto operators = MakeCrossoverSet(RepresentationMode::kFull);
  operators.push_back(std::make_unique<SubtreeCrossover>());

  for (int i = 0; i < 200; ++i) {
    LinkageRule r1 = generator.RandomRule(rng);
    LinkageRule r2 = generator.RandomRule(rng);
    uint64_t h1 = r1.StructuralHash();
    uint64_t h2 = r2.StructuralHash();
    const CrossoverOperator& op = *operators[rng.PickIndex(operators.size())];
    auto child = op.Cross(r1, r2, rng);
    EXPECT_EQ(r1.StructuralHash(), h1)
        << op.name() << " mutated its first parent";
    EXPECT_EQ(r2.StructuralHash(), h2)
        << op.name() << " mutated its second parent";
    if (child.has_value()) {
      // And the child is detached: mutating it leaves the parents alone.
      auto comparisons = CollectComparisons(*child);
      if (!comparisons.empty()) {
        comparisons[0]->set_threshold(12345.0);
        EXPECT_EQ(r1.StructuralHash(), h1);
        EXPECT_EQ(r2.StructuralHash(), h2);
      }
    }
  }
}

// ------------------------------------------------- generator determinism

TEST(GeneratorDeterminismTest, IdenticalConfigIdenticalData) {
  SiderDrugbankConfig config;
  config.scale = 0.05;
  MatchingTask t1 = GenerateSiderDrugbank(config);
  MatchingTask t2 = GenerateSiderDrugbank(config);
  ASSERT_EQ(t1.a.size(), t2.a.size());
  ASSERT_EQ(t1.b.size(), t2.b.size());
  for (size_t i = 0; i < t1.a.size(); ++i) {
    EXPECT_EQ(t1.a.entity(i).id(), t2.a.entity(i).id());
    for (PropertyId p = 0; p < t1.a.schema().NumProperties(); ++p) {
      EXPECT_EQ(t1.a.entity(i).Values(p), t2.a.entity(i).Values(p));
    }
  }
  ASSERT_EQ(t1.links.positives().size(), t2.links.positives().size());
  for (size_t i = 0; i < t1.links.positives().size(); ++i) {
    EXPECT_EQ(t1.links.positives()[i], t2.links.positives()[i]);
  }
}

TEST(GeneratorDeterminismTest, DifferentSeedsDifferentData) {
  SiderDrugbankConfig c1, c2;
  c1.scale = c2.scale = 0.05;
  c2.seed = c1.seed + 1;
  MatchingTask t1 = GenerateSiderDrugbank(c1);
  MatchingTask t2 = GenerateSiderDrugbank(c2);
  auto name = t1.a.schema().FindProperty("drugName");
  ASSERT_TRUE(name.has_value());
  bool any_diff = false;
  for (size_t i = 0; i < std::min(t1.a.size(), t2.a.size()); ++i) {
    if (t1.a.entity(i).Values(*name) != t2.a.entity(i).Values(*name)) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

// Serialization is deterministic: the same rule always renders to the
// same bytes (a requirement for reproducible rule files).
TEST(SerializationDeterminismTest, StableBytes) {
  Rng rng(99);
  std::vector<CompatiblePair> pairs;
  pairs.push_back(
      {"x", "y", DistanceRegistry::Default().Find("levenshtein"), 1});
  RuleGenerator generator(pairs, {"x"}, {"y"});
  for (int i = 0; i < 30; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    EXPECT_EQ(ToSexpr(rule), ToSexpr(rule));
    EXPECT_EQ(ToPrettySexpr(rule), ToPrettySexpr(rule));
    LinkageRule clone = rule.Clone();
    EXPECT_EQ(ToSexpr(rule), ToSexpr(clone));
  }
}

}  // namespace
}  // namespace genlink
