// Concurrency stress for the serving path, written for
// ThreadSanitizer: reader threads drive every query surface
// (MatchEntity, MatchBatch, stats) against a published
// shared_ptr<const MatcherIndex> while a writer thread keeps
// hot-swapping rules with WithRule and republishing. Under
// -DGENLINK_SANITIZE=thread this exercises the writer-priority lock,
// the shared value store appends, the blocking-index cache, and the
// atomic publish pattern the API header documents; under a plain build
// it is a fast smoke test of the same paths (it stays in tier-1 so the
// schedule keeps being exercised).
//
// tests/api_test.cc checks the *answers* under swaps; this test's job
// is purely to put every cross-thread access pattern in front of TSan,
// so assertions are minimal by design.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "api/matcher_index.h"
#include "io/artifact.h"
#include "io/csv.h"
#include "io/link_io.h"
#include "matcher/matcher.h"
#include "model/dataset.h"
#include "rule/builder.h"
#include "serve/serving_state.h"

namespace genlink {
namespace {

// A synthetic corpus with enough token overlap that queries produce
// candidates and links (empty candidate sets would leave the scoring
// paths cold).
Dataset MakeCorpus(size_t n) {
  Dataset dataset("corpus");
  PropertyId name = dataset.schema().AddProperty("name");
  PropertyId city = dataset.schema().AddProperty("city");
  const char* cities[] = {"berlin", "mannheim", "leipzig"};
  for (size_t i = 0; i < n; ++i) {
    std::string id = "e";
    id += std::to_string(i);
    std::string record = "record number ";
    record += std::to_string(i / 2);
    Entity entity(id);
    entity.AddValue(name, record);
    entity.AddValue(city, cities[i % 3]);
    EXPECT_TRUE(dataset.AddEntity(std::move(entity)).ok());
  }
  return dataset;
}

LinkageRule NameRule() {
  auto rule = RuleBuilder()
                  .Compare("jaccard", 0.5, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

LinkageRule NameCityRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.5, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 2.0, Prop("city").Lower(),
                           Prop("city").Lower())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

TEST(StressSwapTsanTest, QueriesRaceHotSwapsCleanly) {
  Dataset corpus = MakeCorpus(60);
  LinkageRule rules[] = {NameRule(), NameCityRule()};

  MatchOptions options;
  options.num_threads = 2;  // the corpus pool MatchBatch dispatches on
  auto serving = std::make_shared<
      std::shared_ptr<const MatcherIndex>>(
      MatcherIndex::Build(corpus, corpus, rules[0], options));

  constexpr int kReaders = 4;
  constexpr int kSwaps = 24;
  std::atomic<bool> stop{false};
  std::atomic<size_t> queries{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        // Grab the currently published generation, exactly as a
        // request handler would.
        std::shared_ptr<const MatcherIndex> index =
            std::atomic_load(serving.get());
        const Entity& entity = corpus.entity(i % corpus.size());
        switch (r % 3) {
          case 0:
            (void)index->MatchEntity(entity, corpus.schema());
            break;
          case 1: {
            auto span = std::span<const Entity>(
                &corpus.entity((i * 3) % (corpus.size() - 8)), 8);
            (void)index->MatchBatch(span, corpus.schema());
            break;
          }
          default:
            (void)index->stats();
            break;
        }
        queries.fetch_add(1, std::memory_order_relaxed);
        i += 13;
      }
    });
  }

  // Writer: alternate rules; every WithRule compiles against the
  // SHARED corpus under the write lock while readers hold read locks,
  // then the new generation is published with an atomic store.
  for (int swap = 1; swap <= kSwaps; ++swap) {
    std::shared_ptr<const MatcherIndex> current = std::atomic_load(serving.get());
    std::atomic_store(serving.get(), current->WithRule(rules[swap % 2]));
    // Compiling against the warm shared store is fast; make sure the
    // swaps actually overlap query traffic instead of finishing before
    // the readers get scheduled.
    const size_t target = static_cast<size_t>(swap) * kReaders;
    while (queries.load(std::memory_order_relaxed) < target) {
      std::this_thread::yield();
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_GE(queries.load(), static_cast<size_t>(kSwaps) * kReaders);
  // The last published generation still answers.
  std::shared_ptr<const MatcherIndex> last = std::atomic_load(serving.get());
  auto links = last->MatchEntity(corpus.entity(0), corpus.schema());
  EXPECT_FALSE(links.empty());  // "record number 0" matches e1
}

// Same shape against a serving-only index (no bound source dataset):
// the `genlink query` deployment, where the query side is evaluated
// per request instead of read from the store.
TEST(StressSwapTsanTest, ServingOnlyIndexSurvivesSwapHammer) {
  Dataset corpus = MakeCorpus(40);
  LinkageRule rules[] = {NameRule(), NameCityRule()};

  auto serving = std::make_shared<std::shared_ptr<const MatcherIndex>>(
      MatcherIndex::Build(corpus, rules[0], MatchOptions{}));

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      size_t i = static_cast<size_t>(r);
      while (!stop.load(std::memory_order_acquire)) {
        std::shared_ptr<const MatcherIndex> index =
            std::atomic_load(serving.get());
        (void)index->MatchEntity(corpus.entity(i % corpus.size()),
                                 corpus.schema());
        i += 5;
      }
    });
  }
  for (int swap = 1; swap <= 16; ++swap) {
    std::shared_ptr<const MatcherIndex> current = std::atomic_load(serving.get());
    std::atomic_store(serving.get(), current->WithRule(rules[swap % 2]));
  }
  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  std::shared_ptr<const MatcherIndex> last = std::atomic_load(serving.get());
  EXPECT_GE(last->stats().target_entities, 40u);
}

// The serve daemon's degradation contract under concurrency: reader
// threads hammer ServingState::index() while a writer alternates GOOD
// and CORRUPT artifact files through ReloadFromFile. Failed reloads
// must never interrupt serving — every reader answer for a pinned
// query is byte-identical to the baseline the good rule produced
// before the hammering started (the corrupt artifact carries a
// different rule, so any leak of a half-applied reload would change
// the bytes).
TEST(StressSwapTsanTest, FailingReloadNeverInterruptsServing) {
  Dataset corpus = MakeCorpus(40);
  const std::string good_path =
      ::testing::TempDir() + "stress_reload_good.artifact";
  const std::string bad_path =
      ::testing::TempDir() + "stress_reload_bad.artifact";
  {
    RuleArtifact artifact;
    artifact.name = "stress-good";
    artifact.rule = NameRule();
    ASSERT_TRUE(SaveArtifact(good_path, artifact).ok());
  }
  ASSERT_TRUE(
      WriteStringToFile(bad_path, "genlink-artifact v99\ncorrupt\n").ok());

  ServingState state(corpus, /*num_threads=*/2);
  ASSERT_TRUE(state.ReloadFromFile(good_path).ok());
  const std::string baseline = WriteGeneratedLinksCsv(
      state.index()->MatchEntity(corpus.entity(0), corpus.schema()));
  ASSERT_NE(baseline.find("e1"), std::string::npos);  // query has a twin

  constexpr int kReaders = 3;
  constexpr int kReloads = 24;
  std::atomic<bool> stop{false};
  std::atomic<size_t> queries{0};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const std::shared_ptr<const MatcherIndex> index = state.index();
        const std::string answer = WriteGeneratedLinksCsv(
            index->MatchEntity(corpus.entity(0), corpus.schema()));
        if (answer != baseline) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // Writer: every odd push is the corrupt artifact and must fail
  // without touching the live index; every even push re-deploys the
  // same good rule (a real swap racing the readers).
  uint64_t failed_pushes = 0;
  for (int reload = 1; reload <= kReloads; ++reload) {
    if (reload % 2 == 1) {
      EXPECT_FALSE(state.ReloadFromFile(bad_path).ok());
      ++failed_pushes;
      EXPECT_TRUE(state.snapshot().stale);
    } else {
      EXPECT_TRUE(state.ReloadFromFile(good_path).ok());
      EXPECT_FALSE(state.snapshot().stale);
    }
    // Make the reloads overlap query traffic instead of finishing
    // before the readers get scheduled.
    const size_t target = static_cast<size_t>(reload) * kReaders;
    while (queries.load(std::memory_order_relaxed) < target) {
      std::this_thread::yield();
    }
  }

  stop.store(true, std::memory_order_release);
  for (auto& reader : readers) reader.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(state.snapshot().failed_reloads, failed_pushes);
  EXPECT_GE(queries.load(), static_cast<size_t>(kReloads) * kReaders);
  // The state is healthy after the last good push and still answers
  // the baseline bytes.
  EXPECT_FALSE(state.snapshot().stale);
  EXPECT_EQ(WriteGeneratedLinksCsv(
                state.index()->MatchEntity(corpus.entity(0), corpus.schema())),
            baseline);
}

}  // namespace
}  // namespace genlink
