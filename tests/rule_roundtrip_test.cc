// Property/fuzz round-trip layer for rule serialization: thousands of
// randomly generated rules across every RepresentationMode must survive
// sexpr serialize -> parse and XML export -> import with their canonical
// hashes intact, bit for bit. The canonical hash covers every threshold
// and weight double plus the identity of every measure / transformation
// / aggregation instance, so an equal hash means the reparsed rule would
// hit the same engine caches and produce the same scores as the
// original — which is exactly what rule files must guarantee.
//
// Property names deliberately include multi-byte UTF-8 and characters
// the two formats must escape; thresholds are additionally forced to
// edge doubles (0, denormal min, values with no short decimal form,
// huge magnitudes) to exercise the exact round-trip formatter.

#include <gtest/gtest.h>

#include <vector>

#include "common/random.h"
#include "gp/rule_generator.h"
#include "rule/parse.h"
#include "rule/rule_hash.h"
#include "rule/serialize.h"
#include "rule/xml.h"

namespace genlink {
namespace {

// UTF-8 property names (accents, CJK, combining marks) plus names that
// force escaping in the s-expression ('"', '\') and XML ('&', '<', '>')
// writers.
const std::vector<std::string>& PropertiesA() {
  static const std::vector<std::string> names = {
      "café",  "名前",        "straße",       "ημερομηνία",
      "title", "a \"quoted\"", "amp&ersand",  "less<than>",
  };
  return names;
}

const std::vector<std::string>& PropertiesB() {
  static const std::vector<std::string> names = {
      "пирог", "날짜",  "naïve", "label",
      "back\\slash", "mixed é&<x>", "phone", "type",
  };
  return names;
}

std::vector<CompatiblePair> MakeCompatiblePairs() {
  const auto& registry = DistanceRegistry::Default();
  std::vector<CompatiblePair> pairs;
  const char* measures[] = {"levenshtein", "jaccard", "numeric",
                            "geographic",  "date",    "jaroWinkler",
                            "cosine",      "equality"};
  for (size_t i = 0; i < PropertiesA().size(); ++i) {
    pairs.push_back({PropertiesA()[i], PropertiesB()[i],
                     registry.Find(measures[i % std::size(measures)]),
                     i + 1});
  }
  return pairs;
}

// Round-trips one rule through both formats and checks the canonical
// hash (and the legacy structural hash) bit for bit.
void ExpectRoundTrips(const LinkageRule& rule, const char* context) {
  const uint64_t canonical = CanonicalRuleHash(rule);
  const uint64_t structural = rule.StructuralHash();

  std::string sexpr = ToSexpr(rule);
  auto parsed = ParseRule(sexpr);
  ASSERT_TRUE(parsed.ok()) << context << ": " << parsed.status().ToString()
                           << "\n" << sexpr;
  EXPECT_EQ(CanonicalRuleHash(*parsed), canonical) << context << "\n" << sexpr;
  EXPECT_EQ(parsed->StructuralHash(), structural) << context << "\n" << sexpr;

  auto pretty = ParseRule(ToPrettySexpr(rule));
  ASSERT_TRUE(pretty.ok()) << context << ": " << pretty.status().ToString();
  EXPECT_EQ(CanonicalRuleHash(*pretty), canonical) << context;

  std::string xml = ToXml(rule);
  auto imported = ParseRuleXml(xml);
  ASSERT_TRUE(imported.ok()) << context << ": "
                             << imported.status().ToString() << "\n" << xml;
  EXPECT_EQ(CanonicalRuleHash(*imported), canonical) << context << "\n" << xml;
  EXPECT_EQ(imported->StructuralHash(), structural) << context << "\n" << xml;
}

TEST(RuleRoundTripTest, RandomRulesAcrossAllModesRoundTripBitIdentically) {
  const RepresentationMode modes[] = {
      RepresentationMode::kBoolean, RepresentationMode::kLinear,
      RepresentationMode::kNonlinear, RepresentationMode::kFull};
  Rng rng(20260730);
  size_t total = 0;
  for (RepresentationMode mode : modes) {
    RuleGeneratorConfig config;
    config.mode = mode;
    RuleGenerator generator(MakeCompatiblePairs(), PropertiesA(),
                            PropertiesB(), config);
    for (int i = 0; i < 300; ++i) {
      LinkageRule rule = generator.RandomRule(rng);
      ExpectRoundTrips(
          rule, std::string(RepresentationModeName(mode)).c_str());
      ++total;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  EXPECT_GE(total, 1000u);
}

TEST(RuleRoundTripTest, ThresholdAndWeightEdgeValuesRoundTrip) {
  // Doubles with no short decimal rendering, denormals, zero and huge
  // magnitudes: FormatDoubleExact must emit a representation that
  // reparses to the identical bit pattern in both formats.
  const double edge_thresholds[] = {
      0.0,
      5e-324,                   // smallest denormal
      2.2250738585072014e-308,  // smallest normal
      0.1,
      0.1 + 0.2,                // 0.30000000000000004
      1.0 / 3.0,
      1e16 + 1,                 // integer not representable in 15 digits
      1.7976931348623157e308,   // max finite double
  };
  Rng rng(7);
  RuleGenerator generator(MakeCompatiblePairs(), PropertiesA(), PropertiesB());
  int checked = 0;
  while (checked < 64) {
    LinkageRule rule = generator.RandomRule(rng);
    auto comparisons = CollectComparisons(rule);
    if (comparisons.empty()) continue;
    for (size_t c = 0; c < comparisons.size(); ++c) {
      comparisons[c]->set_threshold(
          edge_thresholds[(checked + c) % std::size(edge_thresholds)]);
    }
    ExpectRoundTrips(rule, "edge-threshold");
    if (::testing::Test::HasFatalFailure()) return;
    ++checked;
  }
}

TEST(RuleRoundTripTest, UnseededGeneratorUsesRawPropertyLists) {
  // Without compatible pairs the generator draws property pairs
  // uniformly — including every escaped / UTF-8 name combination.
  RuleGeneratorConfig config;
  config.seeded = false;
  RuleGenerator generator({}, PropertiesA(), PropertiesB(), config);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    ExpectRoundTrips(generator.RandomRule(rng), "unseeded");
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace genlink
