// Unit tests for the common substrate: Status/Result, Rng, string
// utilities, hashing and the thread pool.

#include <atomic>
#include <set>

#include <gtest/gtest.h>

#include "common/hash.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace genlink {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("thing is missing");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing is missing");
  EXPECT_EQ(s.ToString(), "NotFound: thing is missing");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kFailedPrecondition,
        StatusCode::kIoError, StatusCode::kParseError, StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::InvalidArgument("bad"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

// ------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (a.NextUint64() != b.NextUint64()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all of 3..7 hit in 1000 draws
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(1);
  EXPECT_EQ(rng.UniformInt(5, 5), 5);
  EXPECT_EQ(rng.UniformInt(5, 4), 5);  // inverted range returns lo
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRoughlyCalibrated) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian(5.0, 2.0);
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ForkStreamsAreIndependentButDeterministic) {
  Rng a(42), b(42);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  }
}

// ----------------------------------------------------------- string_util

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(Split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(StringUtilTest, SplitWhitespaceDropsEmpty) {
  EXPECT_EQ(SplitWhitespace("  a \t b\nc  "),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ", "), "x, y, z");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hello \t"), "hello");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim(" \n "), "");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("x", "http://"));
  EXPECT_TRUE(EndsWith("file.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", ".csv"));
}

TEST(StringUtilTest, ReplaceAll) {
  EXPECT_EQ(ReplaceAll("a-b-c", "-", "+"), "a+b+c");
  EXPECT_EQ(ReplaceAll("aaa", "aa", "b"), "ba");  // non-overlapping
  EXPECT_EQ(ReplaceAll("abc", "", "x"), "abc");   // empty pattern: no-op
}

TEST(StringUtilTest, ParseDouble) {
  double v;
  EXPECT_TRUE(ParseDouble("3.5", &v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(ParseDouble(" -2e3 ", &v));
  EXPECT_DOUBLE_EQ(v, -2000.0);
  EXPECT_FALSE(ParseDouble("abc", &v));
  EXPECT_FALSE(ParseDouble("1.5x", &v));
  EXPECT_FALSE(ParseDouble("", &v));
}

TEST(StringUtilTest, ParseInt64) {
  int64_t v;
  EXPECT_TRUE(ParseInt64("-42", &v));
  EXPECT_EQ(v, -42);
  EXPECT_FALSE(ParseInt64("4.2", &v));
  EXPECT_FALSE(ParseInt64("", &v));
}

TEST(StringUtilTest, FormatDoubleTrimsZeros) {
  EXPECT_EQ(FormatDouble(1.5), "1.5");
  EXPECT_EQ(FormatDouble(2.0), "2");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
}

// ------------------------------------------------------------------ hash

TEST(HashTest, StableAndDistinct) {
  EXPECT_EQ(HashBytes("abc"), HashBytes("abc"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(HashTest, CombineOrderSensitive) {
  uint64_t a = HashCombine(HashBytes("x"), HashBytes("y"));
  uint64_t b = HashCombine(HashBytes("y"), HashBytes("x"));
  EXPECT_NE(a, b);
}

TEST(HashTest, DoubleNormalizesNegativeZero) {
  EXPECT_EQ(HashDouble(0.0), HashDouble(-0.0));
  EXPECT_NE(HashDouble(1.0), HashDouble(2.0));
}

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ParallelForVisitsAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(1000);
  pool.ParallelFor(1000, [&](size_t i) { counts[i].fetch_add(1); });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, ZeroCountIsNoop) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "must not be called"; });
}

TEST(ThreadPoolTest, SingleWorkerRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> sum{0};
  pool.ParallelFor(100, [&](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 4950);
}

}  // namespace
}  // namespace genlink
