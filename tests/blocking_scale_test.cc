// The weighted / sharded blocking layer (matcher/blocking.h):
//
//   * weighted (rare-token) candidates are always a subset of the
//     unweighted candidates, for any k and min-df;
//   * recall floors: 1.0 on the Restaurant reference links, equal to
//     the unweighted ceiling on Cora, >= 0.98 on the synthetic corpus
//     at 100k entities;
//   * the sharded index is bit-identical to the single-shard index for
//     shards in {1,2,4,7} x build/query threads in {1,4} — candidate
//     sets, full GenerateLinks output, and the MatchBatch per-shard
//     fan-out all compare equal, doubles included.

#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "api/matcher_index.h"
#include "common/thread_pool.h"
#include "datasets/cora.h"
#include "datasets/restaurant.h"
#include "datasets/synthetic.h"
#include "eval/blocking_stats.h"
#include "matcher/matcher.h"
#include "rule/builder.h"

namespace genlink {
namespace {

// Weighted-key budgets under which blocking keeps every link of the
// default path on the reference datasets (the floors the scale bench
// gates as well). Restaurant records carry ~10 tokens, Cora citations
// several dozen — hence the larger k.
constexpr size_t kRestaurantTopTokens = 6;
constexpr size_t kCoraTopTokens = 12;
constexpr double kSyntheticRecallFloor = 0.98;

LinkageRule RestaurantRule() {
  auto rule = RuleBuilder()
                  .Aggregate("wmean")
                  .Compare("levenshtein", 3.0, Prop("name").Lower(),
                           Prop("name").Lower())
                  .Compare("jaccard", 0.6, Prop("address").Lower().Tokenize(),
                           Prop("address").Lower().Tokenize())
                  .Compare("levenshtein", 2.0, Prop("phone"), Prop("phone"))
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return rule.ok() ? std::move(*rule) : LinkageRule();
}

LinkageRule CoraRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.7, Prop("title").Lower().Tokenize(),
                           Prop("title").Lower().Tokenize())
                  .Compare("dice", 0.8, Prop("author").Lower().Tokenize(),
                           Prop("author").Lower().Tokenize())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok()) << rule.status().ToString();
  return rule.ok() ? std::move(*rule) : LinkageRule();
}

void ExpectSameLinks(const std::vector<GeneratedLink>& actual,
                     const std::vector<GeneratedLink>& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].id_a, expected[i].id_a) << label << " link " << i;
    EXPECT_EQ(actual[i].id_b, expected[i].id_b) << label << " link " << i;
    // Bit-identical doubles, not just nearly equal.
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " link " << i;
  }
}

TEST(BlockingScaleTest, WeightedCandidatesAreSubsetOfUnweighted) {
  SyntheticConfig synthetic_config;
  synthetic_config.num_entities = 3000;
  const MatchingTask tasks[] = {GenerateRestaurant(RestaurantConfig{}),
                                GenerateSynthetic(synthetic_config)};
  for (const MatchingTask& task : tasks) {
    const TokenBlockingIndex unweighted(task.Target());
    for (const size_t k : {1ul, 2ul, 4ul}) {
      for (const size_t min_df : {1ul, 2ul}) {
        TokenBlockingOptions options;
        options.max_tokens_per_entity = k;
        options.min_token_df = min_df;
        const TokenBlockingIndex weighted(task.Target(), {}, options);
        EXPECT_LE(weighted.NumPostings(), unweighted.NumPostings());
        for (const Entity& entity : task.Source().entities()) {
          const auto full =
              unweighted.Candidates(entity, task.Source().schema());
          const auto pruned =
              weighted.Candidates(entity, task.Source().schema());
          // Both are sorted, so subset is std::includes.
          EXPECT_TRUE(std::includes(full.begin(), full.end(), pruned.begin(),
                                    pruned.end()))
              << task.name << " k=" << k << " min_df=" << min_df
              << " entity=" << entity.id();
        }
      }
    }
  }
}

TEST(BlockingScaleTest, WeightedRecallIsOneOnRestaurant) {
  const MatchingTask task = GenerateRestaurant(RestaurantConfig{});
  TokenBlockingOptions options;
  options.max_tokens_per_entity = kRestaurantTopTokens;
  const TokenBlockingIndex weighted(task.Target(), {}, options);
  EXPECT_DOUBLE_EQ(
      BlockingRecall(weighted, task.Source(), task.Target(), task.links), 1.0);
}

TEST(BlockingScaleTest, WeightedRecallMatchesUnweightedCeilingOnCora) {
  // Cora's unweighted recall is itself slightly below 1.0 (a handful of
  // heavily perturbed editions share no token at all), so the weighted
  // floor is "no worse than the full index", not an absolute 1.0.
  const MatchingTask task = GenerateCora();
  const TokenBlockingIndex unweighted(task.Target());
  TokenBlockingOptions options;
  options.max_tokens_per_entity = kCoraTopTokens;
  const TokenBlockingIndex weighted(task.Target(), {}, options);
  const double ceiling =
      BlockingRecall(unweighted, task.Source(), task.Target(), task.links);
  EXPECT_DOUBLE_EQ(
      BlockingRecall(weighted, task.Source(), task.Target(), task.links),
      ceiling);
  EXPECT_GE(ceiling, 0.99);
}

TEST(BlockingScaleTest, WeightedRecallOnSynthetic100k) {
  SyntheticConfig config;
  config.num_entities = 100000;
  config.num_threads = 0;
  const MatchingTask task = GenerateSynthetic(config);
  ThreadPool pool(0);
  TokenBlockingOptions options;
  options.max_tokens_per_entity = 6;
  const TokenBlockingIndex weighted(task.Target(), {}, options);
  // Candidate volume from a 1-in-25 query sample; pairs completeness
  // checks every one of the ~35k positive links.
  const BlockingQuality quality = MeasureBlockingQuality(
      weighted, task.Source(), task.Target(), task.links,
      /*sample_every=*/25, &pool);
  EXPECT_GE(quality.pairs_completeness, kSyntheticRecallFloor);
  EXPECT_EQ(quality.positives_total, task.links.positives().size());
  // The weighted index discards the overwhelming share of the cross
  // product (the precise reduction-vs-unweighted factor is the scale
  // bench's gate).
  EXPECT_GE(quality.reduction_ratio, 0.9);
}

TEST(BlockingScaleTest, ShardedCandidatesBitIdenticalToSingleShard) {
  const MatchingTask task = GenerateRestaurant(RestaurantConfig{});
  for (const size_t max_tokens : {0ul, kRestaurantTopTokens}) {
    TokenBlockingOptions base_options;
    base_options.max_tokens_per_entity = max_tokens;
    const TokenBlockingIndex single(task.Target(), {}, base_options);
    for (const size_t shards : {1ul, 2ul, 4ul, 7ul}) {
      for (const size_t build_threads : {1ul, 4ul}) {
        ThreadPool pool(build_threads);
        TokenBlockingOptions options = base_options;
        options.num_shards = shards;
        options.build_pool = &pool;
        const ShardedTokenBlockingIndex sharded(task.Target(), {}, options);
        ASSERT_EQ(sharded.NumShards(), shards);
        EXPECT_EQ(sharded.NumTokens(), single.NumTokens());
        EXPECT_EQ(sharded.NumPostings(), single.NumPostings());
        // Per-shard stats sum back to the totals (each token lives in
        // exactly one shard).
        size_t token_sum = 0;
        size_t posting_sum = 0;
        for (size_t s = 0; s < shards; ++s) {
          token_sum += sharded.ShardStats(s).tokens;
          posting_sum += sharded.ShardStats(s).postings;
        }
        EXPECT_EQ(token_sum, sharded.NumTokens());
        EXPECT_EQ(posting_sum, sharded.NumPostings());
        for (const Entity& entity : task.Source().entities()) {
          const auto expected =
              single.Candidates(entity, task.Source().schema());
          EXPECT_EQ(sharded.Candidates(entity, task.Source().schema()),
                    expected)
              << "shards=" << shards << " entity=" << entity.id();
          // The per-shard contract MatchBatch's fan-out relies on: the
          // sorted-unique union over AppendShardCandidates equals
          // Candidates().
          std::vector<size_t> merged;
          for (size_t s = 0; s < shards; ++s) {
            sharded.AppendShardCandidates(s, entity, task.Source().schema(),
                                          merged);
          }
          std::sort(merged.begin(), merged.end());
          merged.erase(std::unique(merged.begin(), merged.end()),
                       merged.end());
          EXPECT_EQ(merged, expected)
              << "shards=" << shards << " entity=" << entity.id();
        }
      }
    }
  }
}

TEST(BlockingScaleTest, ShardedWeightedLinksBitIdenticalOnRestaurantAndCora) {
  // The acceptance gate: with a weighted-key budget whose recall
  // matches the default index, sharded + weighted blocking must
  // produce bit-identical links to the untouched default path — for
  // every shard and thread count.
  struct Case {
    const char* label;
    MatchingTask task;
    LinkageRule rule;
    size_t max_tokens;
  };
  Case cases[] = {
      {"restaurant", GenerateRestaurant(RestaurantConfig{}), RestaurantRule(),
       kRestaurantTopTokens},
      {"cora", GenerateCora(), CoraRule(), kCoraTopTokens},
  };
  for (const Case& c : cases) {
    const std::vector<GeneratedLink> base =
        GenerateLinks(c.rule, c.task.Source(), c.task.Target(), {});
    ASSERT_FALSE(base.empty()) << c.label;
    for (const size_t shards : {1ul, 2ul, 4ul, 7ul}) {
      for (const size_t threads : {1ul, 4ul}) {
        MatchOptions options;
        options.blocking_max_tokens = c.max_tokens;
        options.blocking_shards = shards;
        options.num_threads = threads;
        ExpectSameLinks(
            GenerateLinks(c.rule, c.task.Source(), c.task.Target(), options),
            base,
            std::string(c.label) + " shards=" + std::to_string(shards) +
                " threads=" + std::to_string(threads));
      }
    }
  }
}

TEST(BlockingScaleTest, MatchBatchShardFanOutBitIdentical) {
  const MatchingTask task = GenerateRestaurant(RestaurantConfig{});
  const LinkageRule rule = RestaurantRule();
  MatchOptions reference_options;
  reference_options.num_threads = 1;
  const auto reference = MatcherIndex::Build(task.Source(), task.Target(),
                                             rule, reference_options);
  const std::span<const Entity> queries(task.Source().entities());
  const std::vector<GeneratedLink> expected = reference->MatchBatch(queries);
  ASSERT_FALSE(expected.empty());
  for (const size_t shards : {2ul, 4ul, 7ul}) {
    for (const size_t threads : {1ul, 4ul}) {
      MatchOptions options;
      options.blocking_shards = shards;
      options.num_threads = threads;
      const auto index =
          MatcherIndex::Build(task.Source(), task.Target(), rule, options);
      const MatcherIndexStats stats = index->stats();
      EXPECT_EQ(stats.blocking_shards, shards);
      ASSERT_EQ(stats.blocking_shard_stats.size(), shards);
      size_t postings = 0;
      for (const BlockingShardStats& shard : stats.blocking_shard_stats) {
        postings += shard.postings;
      }
      EXPECT_EQ(postings, stats.blocking_postings);
      ExpectSameLinks(index->MatchBatch(queries), expected,
                      "shards=" + std::to_string(shards) +
                          " threads=" + std::to_string(threads));
    }
  }
}

}  // namespace
}  // namespace genlink
