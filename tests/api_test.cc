// Tests for the service facade (api/matcher_index.h): every query
// surface — MatchEntity, MatchBatch, MatchDataset — must be
// bit-identical to the one-shot GenerateLinks on the paper's evaluation
// data (Restaurant and Cora, blocking and cross product, value store on
// and off), artifacts must round-trip save -> load -> query, and
// WithRule hot swaps must serve exactly what a fresh build would.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "api/matcher_index.h"
#include "datasets/cora.h"
#include "datasets/restaurant.h"
#include "io/artifact.h"
#include "io/csv.h"
#include "matcher/matcher.h"
#include "rule/builder.h"
#include "rule/rule_hash.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

LinkageRule RestaurantRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 3.0, Prop("address").Lower(),
                           Prop("address").Lower())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

LinkageRule CoraRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.7, Prop("title").Lower().Tokenize(),
                           Prop("title").Lower().Tokenize())
                  .Compare("dice", 0.8, Prop("author").Lower().Tokenize(),
                           Prop("author").Lower().Tokenize())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

MatchingTask SmallRestaurant() {
  RestaurantConfig config;
  config.scale = 0.4;
  return GenerateRestaurant(config);
}

MatchingTask SmallCora() {
  CoraConfig config;
  config.scale = 0.15;
  return GenerateCora(config);
}

void ExpectSameLinks(const std::vector<GeneratedLink>& actual,
                     const std::vector<GeneratedLink>& expected,
                     const std::string& label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  for (size_t i = 0; i < actual.size(); ++i) {
    EXPECT_EQ(actual[i].id_a, expected[i].id_a) << label << " link " << i;
    EXPECT_EQ(actual[i].id_b, expected[i].id_b) << label << " link " << i;
    // Bit-identical doubles, not just nearly equal.
    EXPECT_EQ(actual[i].score, expected[i].score) << label << " link " << i;
  }
}

/// The matcher's global link order (matcher/matcher.h contract).
void SortGlobally(std::vector<GeneratedLink>& links) {
  std::sort(links.begin(), links.end(), [](const auto& x, const auto& y) {
    if (x.score != y.score) return x.score > y.score;
    if (x.id_a != y.id_a) return x.id_a < y.id_a;
    return x.id_b < y.id_b;
  });
}

/// Reassembles the one-shot full join from single-entity queries: for a
/// self-indexed corpus MatchEntity serves both orientations, so the
/// join's orientation dedup (id_a < id_b) is applied here.
std::vector<GeneratedLink> JoinFromEntityQueries(const MatcherIndex& index,
                                                 const Dataset& source,
                                                 bool dedup) {
  std::vector<GeneratedLink> links;
  for (const Entity& entity : source.entities()) {
    for (auto& link : index.MatchEntity(entity, source.schema())) {
      if (!dedup || link.id_a < link.id_b) links.push_back(std::move(link));
    }
  }
  SortGlobally(links);
  return links;
}

std::vector<GeneratedLink> JoinFromBatch(const MatcherIndex& index,
                                         const Dataset& source, bool dedup) {
  std::vector<GeneratedLink> links;
  for (auto& link : index.MatchBatch(source.entities(), source.schema())) {
    if (!dedup || link.id_a < link.id_b) links.push_back(std::move(link));
  }
  SortGlobally(links);
  return links;
}

// Every query surface of an index over a dedup task must reproduce
// GenerateLinks bit for bit, for all four execution configurations.
void CheckAllSurfacesOnDedupTask(const MatchingTask& task,
                                 const LinkageRule& rule) {
  for (bool use_blocking : {true, false}) {
    for (bool use_value_store : {true, false}) {
      MatchOptions options;
      options.use_blocking = use_blocking;
      options.use_value_store = use_value_store;
      const std::string label = std::string(task.name) +
                                " blocking=" + std::to_string(use_blocking) +
                                " store=" + std::to_string(use_value_store);
      auto expected = GenerateLinks(rule, task.a, task.a, options);
      ASSERT_GT(expected.size(), 0u) << label;

      auto index = MatcherIndex::Build(task.a, task.a, rule, options);
      ExpectSameLinks(index->MatchDataset(), expected, label + " dataset");
      ExpectSameLinks(index->MatchDataset(task.a), expected,
                      label + " dataset(arg)");
      ExpectSameLinks(JoinFromEntityQueries(*index, task.a, /*dedup=*/true),
                      expected, label + " entity");
      ExpectSameLinks(JoinFromBatch(*index, task.a, /*dedup=*/true), expected,
                      label + " batch");
    }
  }
}

TEST(MatcherIndexTest, AllSurfacesBitIdenticalOnRestaurant) {
  MatchingTask task = SmallRestaurant();
  CheckAllSurfacesOnDedupTask(task, RestaurantRule());
}

TEST(MatcherIndexTest, AllSurfacesBitIdenticalOnCora) {
  MatchingTask task = SmallCora();
  CheckAllSurfacesOnDedupTask(task, CoraRule());
}

// A serving-only index (no bound source) answers MatchDataset through
// the query scorer — its links must still be bit-identical to the
// store-compiled path GenerateLinks takes.
TEST(MatcherIndexTest, ServingOnlyFullJoinBitIdentical) {
  MatchingTask task = SmallRestaurant();
  LinkageRule rule = RestaurantRule();
  auto expected = GenerateLinks(rule, task.a, task.a);
  ASSERT_GT(expected.size(), 0u);

  auto index = MatcherIndex::Build(task.a, rule, MatchOptions{});
  EXPECT_FALSE(index->has_source());
  EXPECT_TRUE(index->MatchDataset().empty());  // no bound source
  ExpectSameLinks(index->MatchDataset(task.a), expected, "serving-only join");
}

// A serving-only index must never return the query's own record when
// the query stream happens to be the corpus itself (the `genlink
// query --target corpus --entities corpus` workflow): without the
// own-id skip every record's best match would be itself at score 1.0.
TEST(MatcherIndexTest, ServingOnlyIndexSkipsOwnId) {
  MatchingTask task = SmallRestaurant();
  LinkageRule rule = RestaurantRule();
  MatchOptions best;
  best.best_match_only = true;
  auto index = MatcherIndex::Build(task.a, rule, best);
  size_t matched = 0;
  for (const Entity& entity : task.a.entities()) {
    for (const auto& link : index->MatchEntity(entity, task.a.schema())) {
      EXPECT_NE(link.id_b, entity.id()) << "self link served for " << entity.id();
      ++matched;
    }
  }
  EXPECT_GT(matched, 0u);  // real duplicates still surface
}

// A self-indexed corpus serves BOTH orientations: the query with the
// larger id must also find its smaller-id duplicate (the full join only
// emits id_a < id_b).
TEST(MatcherIndexTest, MatchEntityServesBothOrientations) {
  MatchingTask task = SmallRestaurant();
  LinkageRule rule = RestaurantRule();
  auto index = MatcherIndex::Build(task.a, task.a, rule, MatchOptions{});
  auto joined = index->MatchDataset();
  ASSERT_GT(joined.size(), 0u);

  const GeneratedLink& link = joined.front();
  const Entity* larger = task.a.FindEntity(link.id_b);
  ASSERT_NE(larger, nullptr);
  bool found = false;
  for (const auto& back_link : index->MatchEntity(*larger, task.a.schema())) {
    EXPECT_NE(back_link.id_b, larger->id());  // never links itself
    if (back_link.id_b == link.id_a) {
      found = true;
      EXPECT_EQ(back_link.score, link.score);
    }
  }
  EXPECT_TRUE(found) << link.id_b << " should find " << link.id_a;
}

// MatchEntity answers must be ordered for serving: best first (score
// desc, then id_b asc), and best_match_only keeps exactly that head.
TEST(MatcherIndexTest, MatchEntityOrderAndBestMatch) {
  MatchingTask task = SmallRestaurant();
  LinkageRule rule = RestaurantRule();
  MatchOptions options;
  options.threshold = 0.1;  // widen so queries see several links
  auto index = MatcherIndex::Build(task.a, task.a, rule, options);

  MatchOptions best_options = options;
  best_options.best_match_only = true;
  auto best_index = MatcherIndex::Build(task.a, task.a, rule, best_options);
  for (const Entity& entity : task.a.entities()) {
    auto links = index->MatchEntity(entity, task.a.schema());
    for (size_t i = 1; i < links.size(); ++i) {
      const bool ordered =
          links[i - 1].score > links[i].score ||
          (links[i - 1].score == links[i].score &&
           links[i - 1].id_b < links[i].id_b);
      EXPECT_TRUE(ordered) << entity.id() << " position " << i;
    }
    auto best = best_index->MatchEntity(entity, task.a.schema());
    if (links.empty()) {
      EXPECT_TRUE(best.empty());
    } else {
      ASSERT_EQ(best.size(), 1u);
      EXPECT_EQ(best[0].id_b, links[0].id_b);
      EXPECT_EQ(best[0].score, links[0].score);
    }
  }
}

// MatchBatch is chunk-parallel; its output must not depend on the
// worker count.
TEST(MatcherIndexTest, MatchBatchThreadCountInvariant) {
  MatchingTask task = SmallRestaurant();
  LinkageRule rule = RestaurantRule();
  std::vector<std::vector<GeneratedLink>> runs;
  for (size_t threads : {size_t{1}, size_t{4}}) {
    MatchOptions options;
    options.num_threads = threads;
    auto index = MatcherIndex::Build(task.a, task.a, rule, options);
    runs.push_back(index->MatchBatch(task.a.entities(), task.a.schema()));
  }
  ExpectSameLinks(runs[1], runs[0], "batch threads 4 vs 1");
  ASSERT_GT(runs[0].size(), 0u);
}

// WithRule compiles a new rule against the SAME corpus artifacts; the
// swapped index must serve exactly what a fresh build of that rule
// serves, the old index must keep serving its own rule, and shared
// value subtrees must not be re-materialized.
TEST(MatcherIndexTest, WithRuleHotSwapEquivalence) {
  MatchingTask task = SmallRestaurant();
  LinkageRule first = RestaurantRule();
  // Second rule shares the name-jaccard subtree with the first and adds
  // an unseen phone comparison.
  auto second_or = RuleBuilder()
                       .Aggregate("max")
                       .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                                Prop("name").Lower().Tokenize())
                       .Compare("levenshtein", 1.0, Prop("phone"), Prop("phone"))
                       .End()
                       .Build();
  ASSERT_TRUE(second_or.ok());
  LinkageRule second = std::move(second_or).value();

  auto index = MatcherIndex::Build(task.a, task.a, first, MatchOptions{});
  const size_t plans_before = index->stats().value_plans;
  auto expected_first = index->MatchDataset();

  auto swapped = index->WithRule(second);
  ExpectSameLinks(swapped->MatchDataset(),
                  GenerateLinks(second, task.a, task.a), "swapped rule");
  // The old generation is untouched by the swap.
  ExpectSameLinks(index->MatchDataset(), expected_first, "old generation");

  // Only the unseen subtree (phone) was materialized: one more plan,
  // not a full recompile (the shared-sides store holds one plan per
  // distinct subtree).
  const size_t plans_after = swapped->stats().value_plans;
  EXPECT_EQ(plans_after, plans_before + 1);

  // Re-swapping the same rule materializes nothing new.
  auto reswap = swapped->WithRule(second);
  EXPECT_EQ(reswap->stats().value_plans, plans_after);
  ExpectSameLinks(reswap->MatchDataset(), swapped->MatchDataset(), "reswap");
}

// Queries on a published index must stay safe while WithRule
// generations compile against the shared corpus (the read/write lock
// on the store): hammer MatchEntity from several threads while the
// main thread keeps hot-swapping between two rules, then check every
// answer matches one of the two rules' reference answers.
TEST(MatcherIndexTest, ConcurrentQueriesDuringHotSwapsAreConsistent) {
  MatchingTask task = SmallRestaurant();
  LinkageRule first = RestaurantRule();
  auto second_or = RuleBuilder()
                       .Compare("levenshtein", 2.0, Prop("name").Lower(),
                                Prop("name").Lower())
                       .Build();
  ASSERT_TRUE(second_or.ok());
  LinkageRule second = std::move(second_or).value();

  auto index = MatcherIndex::Build(task.a, task.a, first, MatchOptions{});
  // Reference answers per rule, computed single-threaded up front.
  auto answers_first = JoinFromEntityQueries(*index, task.a, /*dedup=*/true);
  auto answers_second = JoinFromEntityQueries(
      *MatcherIndex::Build(task.a, task.a, second, MatchOptions{}), task.a,
      /*dedup=*/true);

  std::atomic<bool> stop{false};
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&, w] {
      size_t i = static_cast<size_t>(w);
      while (!stop.load(std::memory_order_relaxed)) {
        const Entity& entity = task.a.entity(i % task.a.size());
        auto links = index->MatchEntity(entity, task.a.schema());
        for (const auto& link : links) {
          if (link.id_b == entity.id()) {
            mismatches.fetch_add(1);  // never links itself
          }
        }
        i += 7;
      }
    });
  }
  // Swap back and forth; each swap compiles under the corpus write
  // lock while the workers keep reading. (The workers query the
  // ORIGINAL index object throughout — old generations must stay valid
  // while new ones compile.)
  std::shared_ptr<const MatcherIndex> current = index;
  for (int swap = 0; swap <= 20; ++swap) {
    current = current->WithRule(swap % 2 == 0 ? second : first);
  }
  stop.store(true);
  for (auto& worker : workers) worker.join();
  EXPECT_EQ(mismatches.load(), 0u);

  // After the dust settles, the original and final generations still
  // serve their exact rules.
  ExpectSameLinks(JoinFromEntityQueries(*index, task.a, /*dedup=*/true),
                  answers_first, "original generation after swaps");
  ExpectSameLinks(JoinFromEntityQueries(*current, task.a, /*dedup=*/true),
                  answers_second, "final generation (last swap = second)");
}

TEST(MatcherIndexTest, StatsReportArtifactSizes) {
  MatchingTask task = SmallRestaurant();
  auto index =
      MatcherIndex::Build(task.a, task.a, RestaurantRule(), MatchOptions{});
  MatcherIndexStats stats = index->stats();
  EXPECT_EQ(stats.target_entities, task.a.size());
  EXPECT_GT(stats.blocking_tokens, 0u);
  EXPECT_GT(stats.value_plans, 0u);
  EXPECT_GT(stats.store_bytes, 0u);
}

// A two-schema (non-dedup) corpus: MatchEntity rows are exactly the
// full join's rows for that source entity — no orientation filter, no
// self skip.
TEST(MatcherIndexTest, NonDedupMatchEntityEqualsJoinRows) {
  Dataset a("a"), b("b");
  PropertyId a_name = a.schema().AddProperty("name");
  PropertyId b_label = b.schema().AddProperty("label");
  const char* names[] = {"alpha one", "bravo two", "charlie three",
                         "delta four"};
  for (int i = 0; i < 4; ++i) {
    Entity ea("x" + std::to_string(i));
    ea.AddValue(a_name, names[i]);
    ASSERT_TRUE(a.AddEntity(std::move(ea)).ok());
    Entity eb("x" + std::to_string(i));  // same ids on purpose: no self skip
    eb.AddValue(b_label, names[i]);
    ASSERT_TRUE(b.AddEntity(std::move(eb)).ok());
  }
  auto rule_or = RuleBuilder()
                     .Compare("levenshtein", 1.0, Prop("name").Lower(),
                              Prop("label").Lower())
                     .Build();
  ASSERT_TRUE(rule_or.ok());
  LinkageRule rule = std::move(rule_or).value();

  auto expected = GenerateLinks(rule, a, b);
  ASSERT_EQ(expected.size(), 4u);  // every row matches its twin, same id
  auto index = MatcherIndex::Build(a, b, rule, MatchOptions{});
  ExpectSameLinks(JoinFromEntityQueries(*index, a, /*dedup=*/false), expected,
                  "non-dedup entity join");
}

// ---------------------------------------------------------------------------
// Artifacts (io/artifact.h)

TEST(RuleArtifactTest, TextRoundTripBothFormats) {
  for (ArtifactRuleFormat format :
       {ArtifactRuleFormat::kXml, ArtifactRuleFormat::kSexpr}) {
    RuleArtifact artifact;
    artifact.name = "restaurant-dedup";
    artifact.rule = RestaurantRule();
    artifact.options.threshold = 0.75;
    artifact.options.best_match_only = true;
    artifact.options.use_blocking = false;
    artifact.options.use_value_store = false;

    auto loaded = ReadRuleArtifact(WriteRuleArtifact(artifact, format));
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->name, "restaurant-dedup");
    EXPECT_EQ(loaded->options.threshold, 0.75);
    EXPECT_TRUE(loaded->options.best_match_only);
    EXPECT_FALSE(loaded->options.use_blocking);
    EXPECT_FALSE(loaded->options.use_value_store);
    // The rule structure survives byte-exactly (canonical hash covers
    // measures, transforms, thresholds and weights).
    EXPECT_EQ(ToSexpr(loaded->rule), ToSexpr(artifact.rule));
    EXPECT_EQ(CanonicalRuleHash(loaded->rule), CanonicalRuleHash(artifact.rule));
  }
}

TEST(RuleArtifactTest, RejectsMalformedInput) {
  auto missing_magic = ReadRuleArtifact("threshold: 0.5\n---\n");
  EXPECT_FALSE(missing_magic.ok());

  auto bad_version = ReadRuleArtifact("genlink-artifact v99\n---\n");
  ASSERT_FALSE(bad_version.ok());
  EXPECT_NE(bad_version.status().ToString().find("v99"), std::string::npos);

  auto unknown_key =
      ReadRuleArtifact("genlink-artifact v1\nfrobnicate: yes\n---\n");
  ASSERT_FALSE(unknown_key.ok());
  EXPECT_NE(unknown_key.status().ToString().find("frobnicate"),
            std::string::npos);

  auto no_separator = ReadRuleArtifact("genlink-artifact v1\nthreshold: 0.5\n");
  ASSERT_FALSE(no_separator.ok());
  EXPECT_NE(no_separator.status().ToString().find("---"), std::string::npos);

  auto bad_bool =
      ReadRuleArtifact("genlink-artifact v1\nuse-blocking: maybe\n---\n");
  EXPECT_FALSE(bad_bool.ok());
}

// The deployment loop: save an artifact to disk, load it in (what would
// be) another process, build an index from it, and serve — queries must
// be bit-identical to the pre-save index.
TEST(RuleArtifactTest, SaveLoadQueryRoundTrip) {
  MatchingTask task = SmallRestaurant();
  RuleArtifact artifact;
  artifact.name = "round-trip";
  artifact.rule = RestaurantRule();
  artifact.options.threshold = 0.5;

  const std::string path = ::testing::TempDir() + "genlink_api_artifact.gla";
  ASSERT_TRUE(SaveArtifact(path, artifact).ok());
  auto loaded = LoadArtifact(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  std::remove(path.c_str());

  auto original = MatcherIndex::Build(task.a, artifact.rule, artifact.options);
  auto deployed = MatcherIndex::Build(task.a, loaded->rule, loaded->options);
  for (const Entity& entity : task.a.entities()) {
    ExpectSameLinks(deployed->MatchEntity(entity, task.a.schema()),
                    original->MatchEntity(entity, task.a.schema()),
                    "deployed query " + entity.id());
  }
}

}  // namespace
}  // namespace genlink
