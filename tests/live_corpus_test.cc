// The LiveCorpus correctness gate (live/live_corpus.h): a mutated index
// must produce links BIT-identical — same ids, same doubles, same order
// — to a fresh MatcherIndex::Build over the same logical corpus, for
// random interleavings of upserts, removes and compactions (including
// upsert-after-delete and re-upsert of the same id), on Restaurant,
// Cora and the synthetic corpus, at thread counts {1, 4, 8}. Plus the
// subsystem's failure contracts: whole-batch validation, the
// df-independent blocking requirement, mapped-base limits, and the
// io.write_error sweep proving an interrupted compaction leaves the
// previous snapshot serving and no temp files behind.

#include "live/live_corpus.h"

#include <gtest/gtest.h>

#include <cerrno>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <algorithm>

#include "api/matcher_index.h"
#include "common/failpoint.h"
#include "common/random.h"
#include "datasets/cora.h"
#include "datasets/restaurant.h"
#include "datasets/synthetic.h"
#include "io/corpus_artifact.h"
#include "live/delta_csv.h"
#include "rule/builder.h"

namespace genlink {
namespace {

LinkageRule RestaurantRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 3.0, Prop("address").Lower(),
                           Prop("address").Lower())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

LinkageRule CoraRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.7, Prop("title").Lower().Tokenize(),
                           Prop("title").Lower().Tokenize())
                  .Compare("dice", 0.8, Prop("author").Lower().Tokenize(),
                           Prop("author").Lower().Tokenize())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

LinkageRule PersonRule() {
  auto rule = RuleBuilder()
                  .Aggregate("max")
                  .Compare("levenshtein", 2.0, Prop("name").Lower(),
                           Prop("name").Lower())
                  .Compare("levenshtein", 1.0, Prop("phone"), Prop("phone"))
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

/// Bit-identity: same link count, ids, doubles and order.
void ExpectSameLinks(const std::vector<GeneratedLink>& got,
                     const std::vector<GeneratedLink>& want,
                     const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].id_a, want[i].id_a) << context << " link " << i;
    EXPECT_EQ(got[i].id_b, want[i].id_b) << context << " link " << i;
    EXPECT_EQ(got[i].score, want[i].score) << context << " link " << i;
  }
}

/// The test's OWN logical model of the corpus — deliberately not
/// derived from LiveCorpus::MaterializeLogical, so the comparison build
/// is independent of the code under test (and works over a mapped base,
/// which cannot materialize).
class LogicalModel {
 public:
  explicit LogicalModel(const Dataset& base) : name_(base.name()) {
    properties_ = base.schema().property_names();
    for (size_t i = 0; i < base.size(); ++i) {
      live_[base.entity(i).id()] = base.entity(i);
    }
  }

  void Upsert(const Entity& entity) { live_[entity.id()] = entity; }
  void Remove(const std::string& id) { live_.erase(id); }
  bool Alive(const std::string& id) const { return live_.count(id) > 0; }
  size_t size() const { return live_.size(); }
  const std::map<std::string, Entity>& live() const { return live_; }

  /// The logical corpus as a fresh Dataset (id order; link results are
  /// corpus-order independent, so any order works).
  Dataset Build() const {
    Dataset out(name_);
    for (const std::string& name : properties_) out.schema().AddProperty(name);
    for (const auto& [id, entity] : live_) {
      EXPECT_TRUE(out.AddEntity(entity).ok()) << id;
    }
    return out;
  }

 private:
  std::string name_;
  std::vector<std::string> properties_;
  std::map<std::string, Entity> live_;
};

/// An edited copy of `base`: one value perturbed (typo-style) or an
/// extra value appended — enough to move distances around.
Entity EditedCopy(const Entity& base, Rng& rng, std::string new_id = "") {
  Entity out = base;
  if (!new_id.empty()) out.set_id(std::move(new_id));
  for (size_t p = 0; p < out.NumPropertySlots(); ++p) {
    if (out.Values(p).empty() || !rng.Bernoulli(0.6)) continue;
    ValueSet values = out.Values(p);
    values[rng.PickIndex(values.size())] += "x";
    out.SetValues(static_cast<PropertyId>(p), values);
    return out;
  }
  out.AddValue(0, "edited value");
  return out;
}

/// Verifies every query surface of `live` against a fresh serving-only
/// build of the model's logical corpus, under the exact user options.
void CheckBitIdentity(const LiveCorpus& live, const LogicalModel& model,
                      const LinkageRule& rule, const MatchOptions& options,
                      const std::vector<Entity>& queries,
                      const Schema& query_schema, const std::string& context) {
  const Dataset fresh = model.Build();
  const auto index = MatcherIndex::Build(fresh, rule, options);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameLinks(live.MatchEntity(queries[i], query_schema),
                    index->MatchEntity(queries[i], query_schema),
                    context + " query " + std::to_string(i));
  }
  ExpectSameLinks(
      live.MatchBatch(std::span<const Entity>(queries), query_schema),
      index->MatchBatch(std::span<const Entity>(queries), query_schema),
      context + " batch");
}

/// The property/fuzz driver: random interleavings of upserts (new id,
/// existing id, re-upsert of a removed id), removes and compactions,
/// with bit-identity re-verified after every burst of mutations.
void RunInterleaving(const Dataset& base, const LinkageRule& rule,
                     MatchOptions options, const std::vector<Entity>& queries,
                     const Schema& query_schema, uint64_t seed, size_t rounds,
                     size_t ops_per_round) {
  auto live = LiveCorpus::Create(base, rule, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  LogicalModel model(base);
  Rng rng(seed);
  std::vector<std::string> removed;  // pool of ids for re-upsert

  CheckBitIdentity(**live, model, rule, options, queries, query_schema,
                   "initial");
  size_t fresh_ids = 0;
  for (size_t round = 0; round < rounds; ++round) {
    for (size_t op = 0; op < ops_per_round; ++op) {
      const double dice = rng.Uniform01();
      std::vector<std::string> ids;
      ids.reserve(model.size());
      for (const auto& [id, entity] : model.live()) ids.push_back(id);
      if (dice < 0.35 && !ids.empty()) {
        // Upsert an existing id with edited values.
        const std::string& id = ids[rng.PickIndex(ids.size())];
        const Entity edited = EditedCopy(model.live().at(id), rng);
        ASSERT_TRUE((*live)->Upsert(edited, (*live)->schema()).ok());
        model.Upsert(edited);
      } else if (dice < 0.55) {
        // Upsert a brand-new id (values borrowed from a live entity).
        const std::string id = "live_new_" + std::to_string(fresh_ids++);
        const Entity& donor =
            ids.empty() ? base.entity(rng.PickIndex(base.size()))
                        : model.live().at(ids[rng.PickIndex(ids.size())]);
        const Entity fresh = EditedCopy(donor, rng, id);
        ASSERT_TRUE((*live)->Upsert(fresh, (*live)->schema()).ok());
        model.Upsert(fresh);
      } else if (dice < 0.7 && !removed.empty()) {
        // Re-upsert a previously removed id.
        const size_t pick = rng.PickIndex(removed.size());
        const std::string id = removed[pick];
        removed.erase(removed.begin() + pick);
        if (model.Alive(id)) continue;  // re-added earlier as "new"
        const Entity& donor = base.entity(rng.PickIndex(base.size()));
        const Entity back = EditedCopy(donor, rng, id);
        ASSERT_TRUE((*live)->Upsert(back, (*live)->schema()).ok());
        model.Upsert(back);
      } else if (dice < 0.9 && !ids.empty()) {
        // Remove a live id (upsert-after-delete feeds from `removed`).
        const std::string id = ids[rng.PickIndex(ids.size())];
        ASSERT_TRUE((*live)->Remove(id).ok());
        model.Remove(id);
        removed.push_back(id);
      } else {
        ASSERT_TRUE((*live)->Compact().ok());
      }
    }
    if (rng.Bernoulli(0.3)) {
      ASSERT_TRUE((*live)->Compact().ok());
    }
    CheckBitIdentity(**live, model, rule, options, queries, query_schema,
                     "round " + std::to_string(round));
  }
  // The subsystem's own materialization agrees with the model.
  auto logical = (*live)->MaterializeLogical();
  ASSERT_TRUE(logical.ok());
  EXPECT_EQ(logical->size(), model.size());
}

std::vector<Entity> SampleQueries(const Dataset& dataset, size_t count) {
  std::vector<Entity> out;
  for (size_t i = 0; i < dataset.size() && out.size() < count;
       i += dataset.size() / count + 1) {
    out.push_back(dataset.entity(i));
  }
  return out;
}

TEST(LiveCorpusTest, RestaurantInterleavingsBitIdenticalAcrossThreads) {
  const MatchingTask task = GenerateRestaurant();
  const LinkageRule rule = RestaurantRule();
  const std::vector<Entity> queries = SampleQueries(task.Target(), 25);
  for (size_t threads : {1u, 4u, 8u}) {
    MatchOptions options;
    options.num_threads = threads;
    RunInterleaving(task.Target(), rule, options, queries,
                    task.Target().schema(), /*seed=*/101 + threads,
                    /*rounds=*/3, /*ops_per_round=*/8);
  }
}

TEST(LiveCorpusTest, CoraInterleavingsBitIdentical) {
  const MatchingTask task = GenerateCora();
  const LinkageRule rule = CoraRule();
  const std::vector<Entity> queries = SampleQueries(task.Target(), 20);
  MatchOptions options;
  options.num_threads = 4;
  RunInterleaving(task.Target(), rule, options, queries,
                  task.Target().schema(), /*seed=*/202, /*rounds=*/3,
                  /*ops_per_round=*/8);
}

TEST(LiveCorpusTest, SyntheticCrossSchemaQueriesWithBestMatch) {
  SyntheticConfig config;
  config.num_entities = 300;
  const MatchingTask task = GenerateSynthetic(config);
  const LinkageRule rule = PersonRule();
  // Queries come from the OTHER side (the paper's A against B) and the
  // best-match reduction runs over the merged base+delta links.
  const std::vector<Entity> queries = SampleQueries(task.a, 20);
  for (size_t threads : {1u, 4u, 8u}) {
    MatchOptions options;
    options.num_threads = threads;
    options.best_match_only = true;
    RunInterleaving(task.b, rule, options, queries, task.a.schema(),
                    /*seed=*/303 + threads, /*rounds=*/2,
                    /*ops_per_round=*/8);
  }
}

TEST(LiveCorpusTest, BlockingOffStillBitIdentical) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 120});
  const LinkageRule rule = RestaurantRule();
  const std::vector<Entity> queries = SampleQueries(task.Target(), 10);
  MatchOptions options;
  options.use_blocking = false;
  options.num_threads = 2;
  RunInterleaving(task.Target(), rule, options, queries,
                  task.Target().schema(), /*seed=*/404, /*rounds=*/2,
                  /*ops_per_round=*/6);
}

TEST(LiveCorpusTest, UpsertAfterDeleteAndReupsertOfSameId) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 100});
  const LinkageRule rule = RestaurantRule();
  MatchOptions options;
  options.num_threads = 2;
  auto live = LiveCorpus::Create(task.Target(), rule, options);
  ASSERT_TRUE(live.ok());
  LogicalModel model(task.Target());
  const std::string id = task.Target().entity(0).id();
  const Entity original = task.Target().entity(0);

  // Remove, then removing again is NotFound.
  ASSERT_TRUE((*live)->Remove(id).ok());
  model.Remove(id);
  const Status twice = (*live)->Remove(id);
  ASSERT_FALSE(twice.ok());
  EXPECT_EQ(twice.code(), StatusCode::kNotFound);

  // Upsert-after-delete resurrects the id with new values.
  Entity revived = original;
  revived.SetValues(0, {"revived name"});
  ASSERT_TRUE((*live)->Upsert(revived, (*live)->schema()).ok());
  model.Upsert(revived);

  // Re-upsert of the same id again (delta-supersedes-delta).
  Entity again = original;
  again.SetValues(0, {"revived name twice"});
  ASSERT_TRUE((*live)->Upsert(again, (*live)->schema()).ok());
  model.Upsert(again);

  // And survive a compaction.
  ASSERT_TRUE((*live)->Compact().ok());
  const std::vector<Entity> queries = SampleQueries(task.Target(), 10);
  CheckBitIdentity(**live, model, rule, options, queries,
                   task.Target().schema(), "after delete/re-upsert");

  const LiveCorpusStats stats = (*live)->stats();
  EXPECT_EQ(stats.live_entities, model.size());
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.delta_log_entries, 0u);  // compaction drained the log
}

TEST(LiveCorpusTest, ApplyBatchRejectsWholeBatchOnAnyBadOp) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 50});
  auto live = LiveCorpus::Create(task.Target(), RestaurantRule());
  ASSERT_TRUE(live.ok());
  const uint64_t epoch_before = (*live)->epoch();
  const LiveCorpusStats before = (*live)->stats();

  // A valid upsert followed by an upsert under an unknown property:
  // NOTHING may be applied.
  Schema foreign;
  foreign.AddProperty("name");
  foreign.AddProperty("no_such_property");
  std::vector<LiveOp> ops(2);
  ops[0].kind = LiveOp::Kind::kUpsert;
  ops[0].entity = Entity("batch_a");
  ops[0].entity.AddValue(0, "valid");
  ops[1].kind = LiveOp::Kind::kUpsert;
  ops[1].entity = Entity("batch_b");
  ops[1].entity.AddValue(1, "lands in the unknown property");
  const Status bad = (*live)->ApplyBatch(ops, foreign);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ((*live)->epoch(), epoch_before);
  EXPECT_EQ((*live)->stats().upserts, before.upserts);
  EXPECT_EQ((*live)->stats().live_entities, before.live_entities);

  // Remove of an id the batch itself already removed: NotFound, and
  // again nothing applied.
  std::vector<LiveOp> removes(2);
  removes[0].kind = LiveOp::Kind::kRemove;
  removes[0].id = task.Target().entity(0).id();
  removes[1].kind = LiveOp::Kind::kRemove;
  removes[1].id = task.Target().entity(0).id();
  const Status dup = (*live)->ApplyBatch(removes, (*live)->schema());
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kNotFound);
  EXPECT_EQ((*live)->epoch(), epoch_before);

  // A batch that upserts an id and removes it again is valid and
  // publishes exactly one epoch.
  std::vector<LiveOp> churn(2);
  churn[0].kind = LiveOp::Kind::kUpsert;
  churn[0].entity = Entity("ephemeral");
  churn[0].entity.AddValue(0, "gone by the end of the batch");
  churn[1].kind = LiveOp::Kind::kRemove;
  churn[1].id = "ephemeral";
  Schema name_only;
  name_only.AddProperty("name");
  ASSERT_TRUE((*live)->ApplyBatch(churn, name_only).ok());
  EXPECT_EQ((*live)->epoch(), epoch_before + 1);
  EXPECT_EQ((*live)->stats().live_entities, before.live_entities);
}

TEST(LiveCorpusTest, RejectsDfDependentBlockingAndEmptyRule) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 30});
  MatchOptions weighted;
  weighted.blocking_max_tokens = 4;
  auto a = LiveCorpus::Create(task.Target(), RestaurantRule(), weighted);
  ASSERT_FALSE(a.ok());
  EXPECT_EQ(a.status().code(), StatusCode::kInvalidArgument);

  MatchOptions min_df;
  min_df.blocking_min_token_df = 2;
  auto b = LiveCorpus::Create(task.Target(), RestaurantRule(), min_df);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kInvalidArgument);

  auto c = LiveCorpus::Create(task.Target(), LinkageRule());
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kInvalidArgument);
}

TEST(LiveCorpusTest, AutoCompactionBoundsTheDeltaLog) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 60});
  const LinkageRule rule = RestaurantRule();
  MatchOptions options;
  options.num_threads = 2;
  LiveCorpusOptions live_options;
  live_options.compact_delta_threshold = 4;
  auto live = LiveCorpus::Create(task.Target(), rule, options, live_options);
  ASSERT_TRUE(live.ok());
  LogicalModel model(task.Target());
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    const Entity fresh = EditedCopy(task.Target().entity(i), rng,
                                    "auto_" + std::to_string(i));
    ASSERT_TRUE((*live)->Upsert(fresh, (*live)->schema()).ok());
    model.Upsert(fresh);
    EXPECT_LT((*live)->stats().delta_log_entries,
              live_options.compact_delta_threshold);
  }
  EXPECT_GE((*live)->stats().compactions, 2u);
  CheckBitIdentity(**live, model, rule, options,
                   SampleQueries(task.Target(), 8), task.Target().schema(),
                   "after auto-compaction");
}

TEST(LiveCorpusTest, DeployRuleReevaluatesLiveDeltaEntries) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 80});
  MatchOptions options;
  options.num_threads = 2;
  auto live = LiveCorpus::Create(task.Target(), RestaurantRule(), options);
  ASSERT_TRUE(live.ok());
  LogicalModel model(task.Target());
  Rng rng(13);
  for (int i = 0; i < 5; ++i) {
    const Entity edited = EditedCopy(task.Target().entity(i), rng);
    ASSERT_TRUE((*live)->Upsert(edited, (*live)->schema()).ok());
    model.Upsert(edited);
  }
  ASSERT_TRUE((*live)->Remove(task.Target().entity(10).id()).ok());
  model.Remove(task.Target().entity(10).id());

  // Swap to a different rule (different comparison sites, different
  // blocking properties) — live delta entries must re-evaluate.
  auto next = RuleBuilder()
                  .Compare("levenshtein", 2.0, Prop("name").Lower(),
                           Prop("name").Lower())
                  .Build();
  ASSERT_TRUE(next.ok());
  MatchOptions next_options = options;
  next_options.threshold = 0.6;
  ASSERT_TRUE((*live)->DeployRule(*next, next_options).ok());
  CheckBitIdentity(**live, model, *next, next_options,
                   SampleQueries(task.Target(), 10), task.Target().schema(),
                   "after rule swap");
}

TEST(LiveCorpusTest, MappedBaseServesMutationsButCannotCompact) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 80});
  const LinkageRule rule = RestaurantRule();
  MatchOptions options;
  options.num_threads = 2;
  const std::string path = ::testing::TempDir() + "live_mapped.glc";
  ASSERT_TRUE(
      WriteCorpusArtifact(path, task.Target(), rule, options).ok());
  auto mapped = MappedCorpus::Load(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();

  auto live = LiveCorpus::Create(*mapped, rule, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  LogicalModel model(task.Target());
  Rng rng(17);
  for (int i = 0; i < 4; ++i) {
    const Entity edited = EditedCopy(task.Target().entity(i), rng);
    ASSERT_TRUE((*live)->Upsert(edited, (*live)->schema()).ok());
    model.Upsert(edited);
  }
  ASSERT_TRUE((*live)->Remove(task.Target().entity(20).id()).ok());
  model.Remove(task.Target().entity(20).id());

  CheckBitIdentity(**live, model, rule, options,
                   SampleQueries(task.Target(), 10), task.Target().schema(),
                   "mapped base");

  const Status compact = (*live)->Compact();
  ASSERT_FALSE(compact.ok());
  EXPECT_EQ(compact.code(), StatusCode::kFailedPrecondition);
  auto materialize = (*live)->MaterializeLogical();
  ASSERT_FALSE(materialize.ok());
  EXPECT_EQ(materialize.status().code(), StatusCode::kFailedPrecondition);
  std::remove(path.c_str());
}

/// The io.write_error sweep (satellite 4): one injected failure at the
/// k-th write-site hit of CompactTo, for every k the successful path
/// performs — whichever site fails, the previous snapshot keeps
/// serving, live state is untouched, and no temp file survives.
TEST(LiveCorpusTest, CompactToWriteFailureSweepKeepsPreviousSnapshotServing) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 60});
  const LinkageRule rule = RestaurantRule();
  MatchOptions options;
  options.num_threads = 2;
  const std::string dir =
      ::testing::TempDir() + "live_compact_sweep/";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "compacted.glc";

  // Count the write-site hits of one successful CompactTo.
  uint64_t total_hits = 0;
  {
    auto probe = LiveCorpus::Create(task.Target(), rule, options);
    ASSERT_TRUE(probe.ok());
    Failpoints::Instance().Arm("io.write_error", {.skip = 1u << 30});
    ASSERT_TRUE((*probe)->CompactTo(path).ok());
    total_hits = Failpoints::Instance().Hits("io.write_error");
    Failpoints::Instance().DisarmAll();
    std::remove(path.c_str());
  }
  ASSERT_GT(total_hits, 0u);

  auto live = LiveCorpus::Create(task.Target(), rule, options);
  ASSERT_TRUE(live.ok());
  LogicalModel model(task.Target());
  Rng rng(23);
  const Entity edited = EditedCopy(task.Target().entity(3), rng);
  ASSERT_TRUE((*live)->Upsert(edited, (*live)->schema()).ok());
  model.Upsert(edited);
  const std::vector<Entity> queries = SampleQueries(task.Target(), 6);
  const uint64_t epoch_before = (*live)->epoch();
  const LiveCorpusStats stats_before = (*live)->stats();

  for (uint64_t skip = 0; skip < total_hits; ++skip) {
    Failpoints::Instance().Arm("io.write_error",
                               {.skip = skip, .count = 1, .error_code = ENOSPC});
    const Status status = (*live)->CompactTo(path);
    Failpoints::Instance().DisarmAll();
    ASSERT_FALSE(status.ok()) << "skip=" << skip;
    // Previous snapshot still serving, nothing mutated.
    EXPECT_EQ((*live)->epoch(), epoch_before) << "skip=" << skip;
    EXPECT_EQ((*live)->stats().compactions, stats_before.compactions);
    EXPECT_EQ((*live)->stats().delta_log_entries,
              stats_before.delta_log_entries);
    CheckBitIdentity(**live, model, rule, options, queries,
                     task.Target().schema(),
                     "after failed compaction, skip=" +
                         std::to_string(skip));
    // No artifact and no temp files left behind.
    size_t entries = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      (void)e;
      ++entries;
    }
    EXPECT_EQ(entries, 0u) << "skip=" << skip;
  }

  // Disarmed, the same compaction succeeds, the artifact loads, and a
  // mapped live corpus over it serves the same links.
  ASSERT_TRUE((*live)->CompactTo(path).ok());
  EXPECT_EQ((*live)->stats().compactions, stats_before.compactions + 1);
  auto mapped = MappedCorpus::Load(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  auto remounted = LiveCorpus::Create(*mapped, rule, options);
  ASSERT_TRUE(remounted.ok());
  CheckBitIdentity(**remounted, model, rule, options, queries,
                   task.Target().schema(), "remounted from artifact");
  std::filesystem::remove_all(dir);
}

TEST(LiveCorpusTest, StatsAndEpochTrackMutations) {
  const MatchingTask task = GenerateRestaurant({.num_entities = 40});
  auto live = LiveCorpus::Create(task.Target(), RestaurantRule());
  ASSERT_TRUE(live.ok());
  EXPECT_EQ((*live)->epoch(), 0u);
  LiveCorpusStats stats = (*live)->stats();
  EXPECT_EQ(stats.base_entities, task.Target().size());
  EXPECT_EQ(stats.live_entities, task.Target().size());
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.delta_store_bytes, 0u);

  Entity fresh("stats_new");
  fresh.AddValue(0, "a new restaurant");
  Schema name_only;
  name_only.AddProperty("name");
  ASSERT_TRUE((*live)->Upsert(fresh, name_only).ok());
  ASSERT_TRUE((*live)->Remove(task.Target().entity(0).id()).ok());
  stats = (*live)->stats();
  EXPECT_EQ((*live)->epoch(), 2u);
  EXPECT_EQ(stats.upserts, 1u);
  EXPECT_EQ(stats.removes, 1u);
  EXPECT_EQ(stats.delta_entities, 1u);
  EXPECT_EQ(stats.tombstones, 1u);
  EXPECT_EQ(stats.live_entities, task.Target().size());
  EXPECT_GT(stats.delta_store_bytes, 0u);

  ASSERT_TRUE((*live)->Compact().ok());
  stats = (*live)->stats();
  EXPECT_EQ((*live)->epoch(), 3u);
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.tombstones, 0u);
  EXPECT_EQ(stats.delta_entities, 0u);
  EXPECT_EQ(stats.base_entities, task.Target().size());  // -1 dead +1 new
  EXPECT_GE(stats.last_compact_seconds, 0.0);
}

TEST(LiveCorpusTest, GeneratedDeltaStreamRoundTripsThroughCsvAndApplies) {
  SyntheticDeltaConfig config;
  config.base.num_entities = 300;
  config.num_deltas = 200;
  const MatchingTask task = GenerateSynthetic(config.base);
  const SyntheticDeltas deltas = GenerateSyntheticDeltas(config);

  // SyntheticDelta -> LiveOp, the same conversion `gen --out-deltas`
  // performs before writing.
  std::vector<LiveOp> ops;
  ops.reserve(deltas.ops.size());
  for (const SyntheticDelta& delta : deltas.ops) {
    LiveOp op;
    if (delta.remove) {
      op.kind = LiveOp::Kind::kRemove;
      op.id = delta.entity.id();
    } else {
      op.entity = delta.entity;
    }
    ops.push_back(std::move(op));
  }

  // The CSV round trip preserves every op, and a second encode is
  // byte-stable.
  const std::string text = WriteDeltaCsv(deltas.schema, ops);
  auto parsed = ReadDeltaCsv(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->schema.NumProperties(), deltas.schema.NumProperties());
  for (PropertyId p = 0; p < deltas.schema.NumProperties(); ++p) {
    EXPECT_EQ(parsed->schema.PropertyName(p), deltas.schema.PropertyName(p));
  }
  ASSERT_EQ(parsed->ops.size(), ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    ASSERT_EQ(parsed->ops[i].kind, ops[i].kind) << "op " << i;
    if (ops[i].kind == LiveOp::Kind::kRemove) {
      EXPECT_EQ(parsed->ops[i].id, ops[i].id) << "op " << i;
    } else {
      EXPECT_EQ(parsed->ops[i].entity.id(), ops[i].entity.id()) << "op " << i;
      for (PropertyId p = 0; p < deltas.schema.NumProperties(); ++p) {
        EXPECT_EQ(parsed->ops[i].entity.Values(p), ops[i].entity.Values(p))
            << "op " << i << " property " << p;
      }
    }
  }
  EXPECT_EQ(WriteDeltaCsv(parsed->schema, parsed->ops), text);

  // The parsed stream applies batch-by-batch (the `genlink apply`
  // path) and the mutated index stays bit-identical to a fresh build
  // of the final logical corpus.
  const LinkageRule rule = PersonRule();
  MatchOptions options;
  options.num_threads = 4;
  auto live = LiveCorpus::Create(task.b, rule, options);
  ASSERT_TRUE(live.ok()) << live.status().ToString();
  LogicalModel model(task.b);
  const std::span<const LiveOp> parsed_ops(parsed->ops);
  for (size_t offset = 0; offset < parsed_ops.size(); offset += 64) {
    const size_t count = std::min<size_t>(64, parsed_ops.size() - offset);
    const auto chunk = parsed_ops.subspan(offset, count);
    ASSERT_TRUE((*live)->ApplyBatch(chunk, parsed->schema).ok());
    for (const LiveOp& op : chunk) {
      // The delta schema lists the same properties in the same order
      // as the synthetic corpus schema, so the entity carries over.
      if (op.kind == LiveOp::Kind::kRemove) {
        model.Remove(op.id);
      } else {
        model.Upsert(op.entity);
      }
    }
  }
  CheckBitIdentity(**live, model, rule, options, SampleQueries(task.a, 40),
                   task.a.schema(), "delta stream");
}

TEST(LiveCorpusTest, DeltaCsvRejectsMalformedInput) {
  EXPECT_FALSE(ReadDeltaCsv("").ok());
  EXPECT_FALSE(ReadDeltaCsv("id,op,name\n").ok());  // wrong column order
  EXPECT_FALSE(ReadDeltaCsv("op,id,name\nupsert,a,b,c\n").ok());  // too wide
  EXPECT_FALSE(ReadDeltaCsv("op,id,name\nnuke,a,b\n").ok());  // unknown op
  EXPECT_FALSE(ReadDeltaCsv("op,id,name\nupsert,,x\n").ok());  // missing id

  // Rows shorter than the header pad with missing values; blank lines
  // are skipped.
  auto ok = ReadDeltaCsv("op,id,name\ndelete,gone\n\nupsert,back,hello\n");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  ASSERT_EQ(ok->ops.size(), 2u);
  EXPECT_EQ(ok->ops[0].kind, LiveOp::Kind::kRemove);
  EXPECT_EQ(ok->ops[0].id, "gone");
  EXPECT_EQ(ok->ops[1].kind, LiveOp::Kind::kUpsert);
  EXPECT_EQ(ok->ops[1].entity.Values(0).front(), "hello");
}

}  // namespace
}  // namespace genlink
