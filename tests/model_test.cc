// Unit tests for the data model: schema, entity, dataset, reference
// links and property statistics.

#include <unordered_set>

#include <gtest/gtest.h>

#include "model/dataset.h"
#include "model/property_stats.h"
#include "model/reference_links.h"

namespace genlink {
namespace {

TEST(SchemaTest, AddAndFind) {
  Schema schema({"name", "age"});
  EXPECT_EQ(schema.NumProperties(), 2u);
  EXPECT_EQ(schema.FindProperty("name"), PropertyId{0});
  EXPECT_EQ(schema.FindProperty("age"), PropertyId{1});
  EXPECT_FALSE(schema.FindProperty("missing").has_value());
  EXPECT_EQ(schema.PropertyName(1), "age");
}

TEST(SchemaTest, DuplicateNamesCollapse) {
  Schema schema;
  PropertyId a = schema.AddProperty("x");
  PropertyId b = schema.AddProperty("x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(schema.NumProperties(), 1u);
}

TEST(EntityTest, MultiValuedProperties) {
  Entity e("e1");
  e.AddValue(0, "a");
  e.AddValue(0, "b");
  e.AddValue(2, "c");
  EXPECT_EQ(e.Values(0), (ValueSet{"a", "b"}));
  EXPECT_TRUE(e.Values(1).empty());
  EXPECT_EQ(e.Values(2), (ValueSet{"c"}));
  EXPECT_TRUE(e.Values(99).empty());  // out of range is safe
  EXPECT_TRUE(e.HasProperty(0));
  EXPECT_FALSE(e.HasProperty(1));
}

TEST(DatasetTest, AddAndFind) {
  Dataset ds("test");
  Entity e("e1");
  ASSERT_TRUE(ds.AddEntity(std::move(e)).ok());
  EXPECT_EQ(ds.size(), 1u);
  EXPECT_NE(ds.FindEntity("e1"), nullptr);
  EXPECT_EQ(ds.FindEntity("nope"), nullptr);
}

TEST(DatasetTest, RejectsDuplicateAndEmptyIds) {
  Dataset ds("test");
  ASSERT_TRUE(ds.AddEntity(Entity("e1")).ok());
  Status dup = ds.AddEntity(Entity("e1"));
  EXPECT_EQ(dup.code(), StatusCode::kInvalidArgument);
  Status empty = ds.AddEntity(Entity(""));
  EXPECT_EQ(empty.code(), StatusCode::kInvalidArgument);
}

TEST(ReferenceLinksTest, NegativeGenerationFollowsPaperScheme) {
  // For positives (a,b), (c,d): negatives must pair a source id from one
  // positive with a target id from a different positive.
  ReferenceLinkSet links;
  links.AddPositive("a1", "b1");
  links.AddPositive("a2", "b2");
  links.AddPositive("a3", "b3");
  Rng rng(5);
  links.GenerateNegativesFromPositives(rng);
  EXPECT_EQ(links.negatives().size(), links.positives().size());

  std::unordered_set<std::string> sources{"a1", "a2", "a3"};
  std::unordered_set<std::string> targets{"b1", "b2", "b3"};
  for (const auto& neg : links.negatives()) {
    EXPECT_TRUE(sources.count(neg.id_a)) << neg.id_a;
    EXPECT_TRUE(targets.count(neg.id_b)) << neg.id_b;
    // Never coincides with a positive: a_i pairs only with b_j, i != j.
    EXPECT_NE(neg.id_a.substr(1), neg.id_b.substr(1));
  }
}

TEST(ReferenceLinksTest, NegativesNeverDuplicate) {
  ReferenceLinkSet links;
  for (int i = 0; i < 20; ++i) {
    links.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
  }
  Rng rng(7);
  links.GenerateNegativesFromPositives(rng, 40);
  std::unordered_set<std::string> seen;
  for (const auto& neg : links.negatives()) {
    EXPECT_TRUE(seen.insert(neg.id_a + "|" + neg.id_b).second);
  }
  EXPECT_EQ(links.negatives().size(), 40u);
}

TEST(ReferenceLinksTest, ResolveFailsOnMissingEntity) {
  Dataset a("a"), b("b");
  ASSERT_TRUE(a.AddEntity(Entity("x")).ok());
  ASSERT_TRUE(b.AddEntity(Entity("y")).ok());
  ReferenceLinkSet links;
  links.AddPositive("x", "missing");
  auto resolved = links.Resolve(a, b);
  EXPECT_FALSE(resolved.ok());
  EXPECT_EQ(resolved.status().code(), StatusCode::kNotFound);
}

TEST(ReferenceLinksTest, ResolveLabelsPairs) {
  Dataset a("a"), b("b");
  ASSERT_TRUE(a.AddEntity(Entity("x")).ok());
  ASSERT_TRUE(b.AddEntity(Entity("y")).ok());
  ReferenceLinkSet links;
  links.AddPositive("x", "y");
  links.AddNegative("x", "y");
  auto resolved = links.Resolve(a, b);
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 2u);
  EXPECT_TRUE((*resolved)[0].is_match);
  EXPECT_FALSE((*resolved)[1].is_match);
}

TEST(ReferenceLinksTest, SplitFoldsBalancedAndDisjoint) {
  ReferenceLinkSet links;
  for (int i = 0; i < 100; ++i) {
    links.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
    links.AddNegative("a" + std::to_string(i), "c" + std::to_string(i));
  }
  Rng rng(11);
  auto folds = links.SplitFolds(2, rng);
  ASSERT_EQ(folds.size(), 2u);
  EXPECT_EQ(folds[0].positives().size(), 50u);
  EXPECT_EQ(folds[1].positives().size(), 50u);
  EXPECT_EQ(folds[0].negatives().size(), 50u);
  EXPECT_EQ(folds[1].negatives().size(), 50u);

  std::unordered_set<std::string> fold0;
  for (const auto& link : folds[0].positives()) fold0.insert(link.id_a);
  for (const auto& link : folds[1].positives()) {
    EXPECT_FALSE(fold0.count(link.id_a)) << "folds must be disjoint";
  }
}

TEST(ReferenceLinksTest, MergeCombines) {
  ReferenceLinkSet x, y;
  x.AddPositive("a", "b");
  y.AddPositive("c", "d");
  y.AddNegative("e", "f");
  x.Merge(y);
  EXPECT_EQ(x.positives().size(), 2u);
  EXPECT_EQ(x.negatives().size(), 1u);
}

TEST(PropertyStatsTest, CoverageComputation) {
  Dataset ds("test");
  PropertyId p0 = ds.schema().AddProperty("always");
  PropertyId p1 = ds.schema().AddProperty("half");
  for (int i = 0; i < 10; ++i) {
    Entity e("e" + std::to_string(i));
    e.AddValue(p0, "v");
    if (i % 2 == 0) {
      e.AddValue(p1, "w1");
      e.AddValue(p1, "w2");
    }
    ASSERT_TRUE(ds.AddEntity(std::move(e)).ok());
  }
  PropertyStats stats = ComputePropertyStats(ds);
  EXPECT_DOUBLE_EQ(stats.coverage[p0], 1.0);
  EXPECT_DOUBLE_EQ(stats.coverage[p1], 0.5);
  EXPECT_DOUBLE_EQ(stats.mean_values[p1], 2.0);
  EXPECT_DOUBLE_EQ(stats.MeanCoverage(), 0.75);
}

}  // namespace
}  // namespace genlink
