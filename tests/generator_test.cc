// Tests for compatible-property mining (Algorithm 2) and random rule
// generation (Section 5.1), including the representation restrictions.

#include <gtest/gtest.h>

#include "gp/compatible_properties.h"
#include "gp/rule_generator.h"
#include "rule/serialize.h"

namespace genlink {
namespace {

// Fixture planting two datasets with one obviously compatible property
// pair (title <-> name) and unrelated noise properties, mirroring the
// Figure 3 example.
class CompatiblePropertiesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    PropertyId a_title = a_.schema().AddProperty("title");
    PropertyId a_junk = a_.schema().AddProperty("internalCode");
    PropertyId b_name = b_.schema().AddProperty("name");
    PropertyId b_junk = b_.schema().AddProperty("catalogId");

    const char* titles[] = {"alpha beta", "gamma delta", "epsilon zeta",
                            "eta theta", "iota kappa"};
    for (int i = 0; i < 5; ++i) {
      Entity ea("a" + std::to_string(i));
      ea.AddValue(a_title, titles[i]);
      ea.AddValue(a_junk, "code-" + std::to_string(i * 131 + 7));
      ASSERT_TRUE(a_.AddEntity(std::move(ea)).ok());

      Entity eb("b" + std::to_string(i));
      eb.AddValue(b_name, titles[i]);  // same values on the other schema
      eb.AddValue(b_junk, "cat-" + std::to_string(i * 977 + 13));
      ASSERT_TRUE(b_.AddEntity(std::move(eb)).ok());
      links_.AddPositive("a" + std::to_string(i), "b" + std::to_string(i));
    }
  }

  Dataset a_{"a"}, b_{"b"};
  ReferenceLinkSet links_;
};

TEST_F(CompatiblePropertiesTest, FindsPlantedPair) {
  Rng rng(1);
  auto pairs = FindCompatibleProperties(a_, b_, links_, {}, rng);
  ASSERT_FALSE(pairs.empty());
  // The strongest-support pair must be title <-> name.
  EXPECT_EQ(pairs[0].property_a, "title");
  EXPECT_EQ(pairs[0].property_b, "name");
  EXPECT_EQ(pairs[0].support, 5u);
}

TEST_F(CompatiblePropertiesTest, DoesNotPairUnrelatedProperties) {
  Rng rng(1);
  auto pairs = FindCompatibleProperties(a_, b_, links_, {}, rng);
  for (const auto& pair : pairs) {
    EXPECT_FALSE(pair.property_a == "internalCode" && pair.property_b == "catalogId");
  }
}

TEST_F(CompatiblePropertiesTest, GeographicProbeDetectsCoordinates) {
  // Add coordinate properties under different names (Figure 3: point /
  // coord with the geographic measure).
  PropertyId a_point = a_.schema().AddProperty("point");
  PropertyId b_coord = b_.schema().AddProperty("coord");
  for (int i = 0; i < 5; ++i) {
    a_.mutable_entity(i).AddValue(a_point, "52.5 13.4");
    b_.mutable_entity(i).AddValue(b_coord, "52.5 13.4");
  }
  Rng rng(1);
  auto pairs = FindCompatibleProperties(a_, b_, links_, {}, rng);
  bool found_geo = false;
  for (const auto& pair : pairs) {
    if (pair.property_a == "point" && pair.property_b == "coord" &&
        pair.measure->name() == "geographic") {
      found_geo = true;
    }
  }
  EXPECT_TRUE(found_geo);
}

TEST_F(CompatiblePropertiesTest, SamplingBoundsRespected) {
  Rng rng(1);
  CompatiblePropertyConfig config;
  config.max_links = 2;  // only 2 of 5 links sampled
  auto pairs = FindCompatibleProperties(a_, b_, links_, config, rng);
  ASSERT_FALSE(pairs.empty());
  EXPECT_LE(pairs[0].support, 2u);
}

// ------------------------------------------------------------ RuleGenerator

class RuleGeneratorTest : public ::testing::Test {
 protected:
  RuleGenerator MakeGenerator(RepresentationMode mode, bool seeded = true) {
    std::vector<CompatiblePair> pairs;
    pairs.push_back(
        {"title", "name", DistanceRegistry::Default().Find("levenshtein"), 5});
    pairs.push_back(
        {"date", "released", DistanceRegistry::Default().Find("date"), 3});
    RuleGeneratorConfig config;
    config.mode = mode;
    config.seeded = seeded;
    return RuleGenerator(pairs, {"title", "date"}, {"name", "released"}, config);
  }
};

TEST_F(RuleGeneratorTest, GeneratedRulesAreValid) {
  Rng rng(3);
  RuleGenerator generator = MakeGenerator(RepresentationMode::kFull);
  for (int i = 0; i < 200; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    EXPECT_TRUE(rule.Validate().ok()) << ToSexpr(rule);
    EXPECT_LE(CollectComparisons(rule).size(), 2u);
  }
}

TEST_F(RuleGeneratorTest, SeededRulesUseCompatibleProperties) {
  Rng rng(5);
  RuleGenerator generator = MakeGenerator(RepresentationMode::kFull);
  for (int i = 0; i < 100; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    for (const auto* cmp : CollectComparisons(rule)) {
      // Source property must come from the seeded pair list.
      const ValueOperator* src = cmp->source();
      while (src->kind() == OperatorKind::kTransform) {
        src = static_cast<const TransformOperator*>(src)->inputs()[0].get();
      }
      std::string prop = static_cast<const PropertyOperator*>(src)->property();
      EXPECT_TRUE(prop == "title" || prop == "date") << prop;
    }
  }
}

TEST_F(RuleGeneratorTest, BooleanModeIsFlatUnweightedUntransformed) {
  Rng rng(7);
  RuleGenerator generator = MakeGenerator(RepresentationMode::kBoolean);
  for (int i = 0; i < 100; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    EXPECT_TRUE(CollectTransforms(rule).empty());
    auto aggregations = CollectAggregations(rule);
    ASSERT_EQ(aggregations.size(), 1u);
    std::string fn(aggregations[0]->function()->name());
    EXPECT_TRUE(fn == "min" || fn == "max") << fn;
    for (const auto* cmp : CollectComparisons(rule)) {
      EXPECT_DOUBLE_EQ(cmp->weight(), 1.0);
    }
  }
}

TEST_F(RuleGeneratorTest, LinearModeUsesOnlyWeightedMean) {
  Rng rng(9);
  RuleGenerator generator = MakeGenerator(RepresentationMode::kLinear);
  for (int i = 0; i < 100; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    EXPECT_TRUE(CollectTransforms(rule).empty());
    for (const auto* agg : CollectAggregations(rule)) {
      EXPECT_EQ(agg->function()->name(), "wmean");
    }
  }
}

TEST_F(RuleGeneratorTest, NonlinearModeHasNoTransforms) {
  Rng rng(11);
  RuleGenerator generator = MakeGenerator(RepresentationMode::kNonlinear);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(CollectTransforms(generator.RandomRule(rng)).empty());
  }
}

TEST_F(RuleGeneratorTest, FullModeEventuallyAddsTransforms) {
  Rng rng(13);
  RuleGenerator generator = MakeGenerator(RepresentationMode::kFull);
  size_t with_transforms = 0;
  for (int i = 0; i < 100; ++i) {
    if (!CollectTransforms(generator.RandomRule(rng)).empty()) ++with_transforms;
  }
  // P(transform) = 50% per property; over 100 rules this is near-certain.
  EXPECT_GT(with_transforms, 30u);
}

TEST_F(RuleGeneratorTest, ThresholdsWithinMeasureRange) {
  Rng rng(15);
  RuleGenerator generator = MakeGenerator(RepresentationMode::kFull);
  for (int i = 0; i < 200; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    for (const auto* cmp : CollectComparisons(rule)) {
      EXPECT_GT(cmp->threshold(), 0.0);
      EXPECT_LE(cmp->threshold(), cmp->measure()->MaxThreshold());
    }
  }
}

TEST_F(RuleGeneratorTest, UnseededFallsBackToSchemaProperties) {
  Rng rng(17);
  RuleGenerator generator = MakeGenerator(RepresentationMode::kFull,
                                          /*seeded=*/false);
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(generator.RandomRule(rng).Validate().ok());
  }
}

TEST(RepresentationModeTest, Names) {
  EXPECT_EQ(RepresentationModeName(RepresentationMode::kBoolean), "boolean");
  EXPECT_EQ(RepresentationModeName(RepresentationMode::kLinear), "linear");
  EXPECT_EQ(RepresentationModeName(RepresentationMode::kNonlinear), "nonlinear");
  EXPECT_EQ(RepresentationModeName(RepresentationMode::kFull), "full");
}

}  // namespace
}  // namespace genlink
