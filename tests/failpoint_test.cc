// Units for the fault-injection vocabulary (common/clock.h,
// common/failpoint.h): injectable clocks, deadlines, cooperative
// cancellation, and deterministic failpoint hit windows — the seams
// the serve daemon's robustness tests stand on.

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/failpoint.h"

namespace genlink {
namespace {

using std::chrono::milliseconds;

TEST(ClockTest, RealClockIsMonotonic) {
  const Clock* clock = Clock::Real();
  const Clock::TimePoint a = clock->Now();
  const Clock::TimePoint b = clock->Now();
  EXPECT_LE(a, b);
}

TEST(ClockTest, FakeClockAdvances) {
  FakeClock clock;
  const Clock::TimePoint start = clock.Now();
  clock.Advance(milliseconds(250));
  EXPECT_EQ(clock.Now() - start, milliseconds(250));
}

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.infinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining(), Clock::Duration::max());
}

TEST(DeadlineTest, ExpiresOnFakeClock) {
  FakeClock clock;
  Deadline deadline = Deadline::After(milliseconds(100), &clock);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining(), milliseconds(100));
  clock.Advance(milliseconds(99));
  EXPECT_FALSE(deadline.Expired());
  clock.Advance(milliseconds(1));
  EXPECT_TRUE(deadline.Expired());
  EXPECT_EQ(deadline.Remaining(), Clock::Duration::zero());
}

TEST(DeadlineTest, EarlierPicksTheTighterBudget) {
  FakeClock clock;
  Deadline loose = Deadline::After(milliseconds(500), &clock);
  Deadline tight = Deadline::After(milliseconds(100), &clock);
  Deadline infinite;
  EXPECT_EQ(Deadline::Earlier(loose, tight).Remaining(), milliseconds(100));
  EXPECT_EQ(Deadline::Earlier(tight, loose).Remaining(), milliseconds(100));
  EXPECT_EQ(Deadline::Earlier(infinite, tight).Remaining(), milliseconds(100));
  EXPECT_TRUE(Deadline::Earlier(infinite, infinite).infinite());
}

TEST(CancelTokenTest, FiresOnRequestOrDeadline) {
  CancelToken plain;
  EXPECT_FALSE(plain.Cancelled());
  plain.RequestCancel();
  EXPECT_TRUE(plain.Cancelled());

  FakeClock clock;
  CancelToken timed(Deadline::After(milliseconds(10), &clock));
  EXPECT_FALSE(timed.Cancelled());
  clock.Advance(milliseconds(10));
  EXPECT_TRUE(timed.Cancelled());
}

TEST(CancelTokenTest, CrossThreadCancelIsObserved) {
  CancelToken token;
  std::thread canceller([&token] { token.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(token.Cancelled());
}

class FailpointTest : public ::testing::Test {
 protected:
  void TearDown() override { Failpoints::Instance().DisarmAll(); }
};

TEST_F(FailpointTest, DisarmedNeverFires) {
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_FALSE(GENLINK_FAILPOINT("test.nothing"));
  EXPECT_EQ(Failpoints::Instance().Hits("test.nothing"), 0u);
}

TEST_F(FailpointTest, ArmedFiresWithinWindow) {
  // skip=1 count=2: hits 0 pass, 1 and 2 fire, 3+ pass.
  Failpoints::Instance().Arm("test.window",
                             {.skip = 1, .count = 2, .error_code = 0});
  EXPECT_TRUE(Failpoints::AnyArmed());
  EXPECT_FALSE(GENLINK_FAILPOINT("test.window"));
  EXPECT_TRUE(GENLINK_FAILPOINT("test.window"));
  EXPECT_TRUE(GENLINK_FAILPOINT("test.window"));
  EXPECT_FALSE(GENLINK_FAILPOINT("test.window"));
  EXPECT_EQ(Failpoints::Instance().Hits("test.window"), 4u);
}

TEST_F(FailpointTest, DeliversErrorCode) {
  Failpoints::Instance().Arm("test.errno", {.error_code = ECONNRESET});
  int code = 0;
  EXPECT_TRUE(GENLINK_FAILPOINT_E("test.errno", &code));
  EXPECT_EQ(code, ECONNRESET);
}

TEST_F(FailpointTest, RearmResetsTheHitCounter) {
  Failpoints::Instance().Arm("test.rearm", {});
  EXPECT_TRUE(GENLINK_FAILPOINT("test.rearm"));
  EXPECT_TRUE(GENLINK_FAILPOINT("test.rearm"));
  EXPECT_EQ(Failpoints::Instance().Hits("test.rearm"), 2u);
  Failpoints::Instance().Arm("test.rearm", {.skip = 1});
  EXPECT_EQ(Failpoints::Instance().Hits("test.rearm"), 0u);
  EXPECT_FALSE(GENLINK_FAILPOINT("test.rearm"));  // skipped again
  EXPECT_TRUE(GENLINK_FAILPOINT("test.rearm"));
}

TEST_F(FailpointTest, DisarmStopsFiringAndAnyArmedDrops) {
  Failpoints::Instance().Arm("test.a", {});
  Failpoints::Instance().Arm("test.b", {});
  Failpoints::Instance().Disarm("test.a");
  EXPECT_FALSE(GENLINK_FAILPOINT("test.a"));
  EXPECT_TRUE(GENLINK_FAILPOINT("test.b"));
  EXPECT_TRUE(Failpoints::AnyArmed());
  Failpoints::Instance().DisarmAll();
  EXPECT_FALSE(Failpoints::AnyArmed());
  EXPECT_FALSE(GENLINK_FAILPOINT("test.b"));
}

TEST_F(FailpointTest, ConcurrentEvaluationIsSafeAndCounted) {
  Failpoints::Instance().Arm("test.mt", {.skip = 0, .count = 100});
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> threads;
  std::atomic<int> fired{0};
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fired] {
      for (int i = 0; i < kPerThread; ++i) {
        if (GENLINK_FAILPOINT("test.mt")) {
          fired.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(fired.load(), 100);
  EXPECT_EQ(Failpoints::Instance().Hits("test.mt"),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

}  // namespace
}  // namespace genlink
