// Golden-file tests for generated link output: a fixed rule over the
// deterministic Restaurant generator must produce byte-identical CSV
// and owl:sameAs N-Triples through GenerateLinks + io/link_io, covering
// the threshold and best_match_only matcher options (which previously
// had no direct output test). The matcher sorts links by (score desc,
// id_a, id_b) — a total order — and the writers format scores with a
// fixed precision, so the bytes are stable across platforms and thread
// counts.
//
// The golden files live in tests/golden/ (path baked in via the
// GENLINK_TEST_GOLDEN_DIR compile definition). To regenerate after an
// intentional output change:
//   GENLINK_REGEN_GOLDEN=1 ./golden_links_test

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "datasets/restaurant.h"
#include "io/link_io.h"
#include "matcher/matcher.h"
#include "rule/parse.h"

namespace genlink {
namespace {

std::string GoldenPath(const std::string& name) {
  return std::string(GENLINK_TEST_GOLDEN_DIR) + "/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path
                         << " (regenerate with GENLINK_REGEN_GOLDEN=1)";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool RegenRequested() {
  const char* regen = std::getenv("GENLINK_REGEN_GOLDEN");
  return regen != nullptr && regen[0] != '\0' && regen[0] != '0';
}

// Compares `actual` against the golden file byte for byte; in regen
// mode rewrites the file instead.
void ExpectMatchesGolden(const std::string& actual, const std::string& name) {
  const std::string path = GoldenPath(name);
  if (RegenRequested()) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    return;
  }
  std::string expected = ReadFileOrDie(path);
  EXPECT_EQ(actual, expected) << "output differs from golden " << path;
}

class GoldenLinksTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RestaurantConfig config;
    config.scale = 0.3;  // 259 records, seconds-fast, still ~30 links
    task_ = GenerateRestaurant(config);

    std::string rule_text = ReadFileOrDie(GoldenPath("restaurant.rule"));
    ASSERT_FALSE(rule_text.empty());
    auto rule = ParseRule(rule_text);
    ASSERT_TRUE(rule.ok()) << rule.status().ToString();
    rule_ = std::move(*rule);
  }

  std::vector<GeneratedLink> Generate(const MatchOptions& options) {
    return GenerateLinks(rule_, task_.Source(), task_.Target(), options);
  }

  MatchingTask task_;
  LinkageRule rule_;
};

TEST_F(GoldenLinksTest, DefaultThresholdCsvAndNt) {
  MatchOptions options;
  auto links = Generate(options);
  EXPECT_GT(links.size(), 10u);
  ExpectMatchesGolden(WriteGeneratedLinksCsv(links), "restaurant_links.csv");
  ExpectMatchesGolden(WriteGeneratedLinksNt(links), "restaurant_links.nt");
}

TEST_F(GoldenLinksTest, HighThresholdVariant) {
  MatchOptions options;
  options.threshold = 0.75;
  auto links = Generate(options);
  ExpectMatchesGolden(WriteGeneratedLinksCsv(links),
                      "restaurant_links_t075.csv");
}

// Golden regenerated when best_match_only gained its deterministic
// tie-break (score desc, then id_b asc — see MatchOptions): two
// Restaurant sources have several exact-1.0 duplicates, and the old
// code kept whichever came first in candidate-enumeration order.
TEST_F(GoldenLinksTest, BestMatchOnlyVariant) {
  MatchOptions options;
  options.best_match_only = true;
  auto links = Generate(options);
  ExpectMatchesGolden(WriteGeneratedLinksCsv(links),
                      "restaurant_links_best.csv");
}

// The golden bytes must not depend on the execution strategy: blocking
// vs cross product, value store vs operator tree, 1 vs 4 threads all
// serialize to the same files.
TEST_F(GoldenLinksTest, OutputIndependentOfExecutionStrategy) {
  MatchOptions base;
  std::string golden = WriteGeneratedLinksCsv(Generate(base));

  MatchOptions cross = base;
  cross.use_blocking = false;
  EXPECT_EQ(WriteGeneratedLinksCsv(Generate(cross)), golden);

  MatchOptions no_store = base;
  no_store.use_value_store = false;
  EXPECT_EQ(WriteGeneratedLinksCsv(Generate(no_store)), golden);

  MatchOptions threads = base;
  threads.num_threads = 4;
  EXPECT_EQ(WriteGeneratedLinksCsv(Generate(threads)), golden);
}

}  // namespace
}  // namespace genlink
