// Round-trip and error tests for the Silk-style XML rule format.

#include <gtest/gtest.h>

#include "gp/rule_generator.h"
#include "rule/builder.h"
#include "rule/xml.h"

namespace genlink {
namespace {

LinkageRule SampleRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("levenshtein", 1.0, Prop("label").Lower(), Prop("label"))
                  .Compare("geographic", 50.0, Prop("point"), Prop("coord"), 2.0)
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

TEST(XmlTest, RendersSilkStructure) {
  std::string xml = ToXml(SampleRule());
  EXPECT_NE(xml.find("<LinkageRule>"), std::string::npos);
  EXPECT_NE(xml.find("<Aggregate type=\"min\""), std::string::npos);
  EXPECT_NE(xml.find("<Compare metric=\"levenshtein\" threshold=\"1\""),
            std::string::npos);
  EXPECT_NE(xml.find("<TransformInput function=\"lowerCase\">"),
            std::string::npos);
  EXPECT_NE(xml.find("<Input path=\"label\"/>"), std::string::npos);
  EXPECT_NE(xml.find("</LinkageRule>"), std::string::npos);
}

TEST(XmlTest, RoundTripPreservesStructure) {
  LinkageRule original = SampleRule();
  auto reparsed = ParseRuleXml(ToXml(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(original.StructuralHash(), reparsed->StructuralHash());
}

TEST(XmlTest, EscapedAttributeValuesRoundTrip) {
  auto rule = RuleBuilder()
                  .Compare("equality", 0.5, Prop("a<b>&\"c'"), Prop("plain"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  std::string xml = ToXml(*rule);
  auto reparsed = ParseRuleXml(xml);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << xml;
  auto comparisons = CollectComparisons(*reparsed);
  ASSERT_EQ(comparisons.size(), 1u);
  EXPECT_EQ(
      static_cast<const PropertyOperator*>(comparisons[0]->source())->property(),
      "a<b>&\"c'");
}

TEST(XmlTest, AcceptsPrologAndComments) {
  std::string xml =
      "<?xml version=\"1.0\"?>\n"
      "<!-- a linkage rule -->\n"
      "<LinkageRule>\n"
      "  <Compare metric=\"equality\" threshold=\"0.5\" weight=\"1\">\n"
      "    <Input path=\"x\"/>\n"
      "    <Input path=\"y\"/>\n"
      "  </Compare>\n"
      "</LinkageRule>\n";
  auto rule = ParseRuleXml(xml);
  ASSERT_TRUE(rule.ok()) << rule.status().ToString();
  EXPECT_TRUE(rule->Validate().ok());
}

TEST(XmlTest, MissingWeightDefaultsToOne) {
  std::string xml =
      "<LinkageRule><Compare metric=\"equality\" threshold=\"0.5\">"
      "<Input path=\"x\"/><Input path=\"y\"/></Compare></LinkageRule>";
  auto rule = ParseRuleXml(xml);
  ASSERT_TRUE(rule.ok());
  EXPECT_DOUBLE_EQ(CollectComparisons(*rule)[0]->weight(), 1.0);
}

TEST(XmlTest, ReportsStructuralErrors) {
  // Unknown metric.
  EXPECT_FALSE(ParseRuleXml("<LinkageRule><Compare metric=\"nope\" "
                            "threshold=\"1\"><Input path=\"x\"/><Input "
                            "path=\"y\"/></Compare></LinkageRule>")
                   .ok());
  // Wrong child count.
  EXPECT_FALSE(ParseRuleXml("<LinkageRule><Compare metric=\"equality\" "
                            "threshold=\"1\"><Input "
                            "path=\"x\"/></Compare></LinkageRule>")
                   .ok());
  // Empty aggregation.
  EXPECT_FALSE(
      ParseRuleXml("<LinkageRule><Aggregate type=\"min\"/></LinkageRule>").ok());
  // Mismatched tags.
  EXPECT_FALSE(ParseRuleXml("<LinkageRule><Aggregate type=\"min\">"
                            "</Compare></LinkageRule>")
                   .ok());
  // Wrong root.
  EXPECT_FALSE(ParseRuleXml("<Rule/>").ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseRuleXml("<LinkageRule><Compare metric=\"equality\" "
                            "threshold=\"1\"><Input path=\"x\"/><Input "
                            "path=\"y\"/></Compare></LinkageRule><extra/>")
                   .ok());
  // Malformed attribute.
  EXPECT_FALSE(ParseRuleXml("<LinkageRule><Compare metric=equality "
                            "threshold=\"1\"/></LinkageRule>")
                   .ok());
}

// Property test: random rules round-trip through XML with identical
// structural hashes.
class XmlRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTripTest, RandomRulesRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337);
  std::vector<CompatiblePair> pairs;
  pairs.push_back({"title", "name", DistanceRegistry::Default().Find("levenshtein"), 3});
  pairs.push_back({"pos", "coord", DistanceRegistry::Default().Find("geographic"), 1});
  RuleGenerator generator(pairs, {"title", "pos"}, {"name", "coord"});
  for (int i = 0; i < 50; ++i) {
    LinkageRule rule = generator.RandomRule(rng);
    auto reparsed = ParseRuleXml(ToXml(rule));
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n"
                               << ToXml(rule);
    EXPECT_EQ(rule.StructuralHash(), reparsed->StructuralHash()) << ToXml(rule);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTripTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace genlink
