// Tests for the six synthetic dataset generators: entity/link counts,
// schema widths and coverages matching Tables 5-6 of the paper (at the
// generated scale), resolvability of every reference link, determinism,
// and the planted structure (remake corner cases, identifier formats).

#include <set>

#include <gtest/gtest.h>

#include "common/string_util.h"
#include "datasets/cora.h"
#include "datasets/dbpedia_drugbank.h"
#include "datasets/linkedmdb.h"
#include "datasets/noise.h"
#include "datasets/nyt.h"
#include "datasets/restaurant.h"
#include "datasets/sider_drugbank.h"
#include "model/property_stats.h"

namespace genlink {
namespace {

void ExpectLinksResolve(const MatchingTask& task) {
  auto resolved = task.links.Resolve(task.Source(), task.Target());
  ASSERT_TRUE(resolved.ok()) << task.name << ": " << resolved.status().ToString();
  EXPECT_EQ(resolved->size(), task.links.size());
}

// ---------------------------------------------------------------- noise

TEST(NoiseTest, TypoChangesStringSlightly) {
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    std::string noisy = InjectTypo("reference", rng);
    EXPECT_GE(noisy.size(), 8u);
    EXPECT_LE(noisy.size(), 10u);
  }
  EXPECT_EQ(InjectTypo("", rng), "");
}

TEST(NoiseTest, ShuffleAndDropPreserveTokens) {
  Rng rng(2);
  std::string shuffled = ShuffleTokens("a b c d", rng);
  EXPECT_EQ(SplitWhitespace(shuffled).size(), 4u);
  std::string dropped = DropRandomToken("a b c d", rng);
  EXPECT_EQ(SplitWhitespace(dropped).size(), 3u);
  EXPECT_EQ(DropRandomToken("single", rng), "single");
}

TEST(NoiseTest, AbbreviateKeepsFirstLetter) {
  Rng rng(3);
  std::string abbreviated = AbbreviateTokens("jonathan smithson", 1.0, rng);
  EXPECT_EQ(abbreviated, "j. s.");
}

TEST(NoiseTest, FillerPropertiesHitTargetCoverage) {
  Dataset ds("test");
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(ds.AddEntity(Entity("e" + std::to_string(i))).ok());
  }
  Rng rng(4);
  AddFillerProperties(ds, 10, 0.4, "p", rng);
  EXPECT_EQ(ds.schema().NumProperties(), 10u);
  PropertyStats stats = ComputePropertyStats(ds);
  EXPECT_NEAR(stats.MeanCoverage(), 0.4, 0.05);
}

// ----------------------------------------------------------------- Cora

TEST(CoraTest, FullScaleMatchesTable5) {
  MatchingTask task = GenerateCora();
  EXPECT_EQ(task.a.size(), 1879u);
  EXPECT_EQ(task.links.positives().size(), 1617u);
  EXPECT_EQ(task.links.negatives().size(), 1617u);
  EXPECT_EQ(task.a.schema().NumProperties(), 4u);  // Table 6
  EXPECT_TRUE(task.dedup);
  ExpectLinksResolve(task);
}

TEST(CoraTest, CoverageNearTable6) {
  MatchingTask task = GenerateCora();
  PropertyStats stats = ComputePropertyStats(task.a);
  EXPECT_NEAR(stats.MeanCoverage(), 0.8, 0.1);  // Table 6: 0.8
}

TEST(CoraTest, DeterministicAndScalable) {
  CoraConfig config;
  config.scale = 0.1;
  MatchingTask t1 = GenerateCora(config);
  MatchingTask t2 = GenerateCora(config);
  EXPECT_EQ(t1.a.size(), t2.a.size());
  EXPECT_EQ(t1.a.size(), 187u);
  ASSERT_GT(t1.a.size(), 0u);
  auto title = t1.a.schema().FindProperty("title");
  ASSERT_TRUE(title.has_value());
  EXPECT_EQ(t1.a.entity(0).Values(*title), t2.a.entity(0).Values(*title));
}

TEST(CoraTest, PositiveLinksShareUnderlyingPaper) {
  CoraConfig config;
  config.scale = 0.2;
  MatchingTask task = GenerateCora(config);
  auto resolved = task.links.Resolve(task.Source(), task.Target());
  ASSERT_TRUE(resolved.ok());
  auto date = task.a.schema().FindProperty("date");
  ASSERT_TRUE(date.has_value());
  // Co-referent citations that both carry a date must agree on it.
  for (const auto& pair : *resolved) {
    if (!pair.is_match) continue;
    const ValueSet& da = pair.a->Values(*date);
    const ValueSet& db = pair.b->Values(*date);
    if (!da.empty() && !db.empty()) EXPECT_EQ(da[0], db[0]);
  }
}

// ------------------------------------------------------------ Restaurant

TEST(RestaurantTest, FullScaleMatchesTable5) {
  MatchingTask task = GenerateRestaurant();
  EXPECT_EQ(task.a.size(), 864u);
  EXPECT_EQ(task.links.positives().size(), 112u);
  EXPECT_EQ(task.a.schema().NumProperties(), 5u);
  ExpectLinksResolve(task);
}

TEST(RestaurantTest, FullCoveragePerTable6) {
  MatchingTask task = GenerateRestaurant();
  PropertyStats stats = ComputePropertyStats(task.a);
  EXPECT_DOUBLE_EQ(stats.MeanCoverage(), 1.0);
}

// --------------------------------------------------------- SiderDrugbank

TEST(SiderDrugbankTest, ScaledCountsAndSchemas) {
  SiderDrugbankConfig config;
  config.scale = 0.05;
  MatchingTask task = GenerateSiderDrugbank(config);
  EXPECT_EQ(task.a.size(), 46u);   // 924 * 0.05
  EXPECT_EQ(task.b.size(), 238u);  // 4772 * 0.05
  EXPECT_EQ(task.a.schema().NumProperties(), 8u);   // Table 6
  EXPECT_EQ(task.b.schema().NumProperties(), 79u);  // Table 6
  ExpectLinksResolve(task);
}

TEST(SiderDrugbankTest, DrugbankCoverageNearHalf) {
  SiderDrugbankConfig config;
  config.scale = 0.2;
  MatchingTask task = GenerateSiderDrugbank(config);
  PropertyStats stats = ComputePropertyStats(task.b);
  EXPECT_NEAR(stats.MeanCoverage(), 0.5, 0.12);  // Table 6: 0.5
}

TEST(SiderDrugbankTest, CasNumbersComeInBothFormats) {
  SiderDrugbankConfig config;
  config.scale = 0.3;
  MatchingTask task = GenerateSiderDrugbank(config);
  auto cas = task.b.schema().FindProperty("casRegistryNumber");
  ASSERT_TRUE(cas.has_value());
  bool with_dash = false, without_dash = false;
  for (const auto& entity : task.b.entities()) {
    for (const auto& value : entity.Values(*cas)) {
      (value.find('-') != std::string::npos ? with_dash : without_dash) = true;
    }
  }
  EXPECT_TRUE(with_dash);
  EXPECT_TRUE(without_dash);
}

// ------------------------------------------------------------------- NYT

TEST(NytTest, ScaledCountsAndSchemas) {
  NytConfig config;
  config.scale = 0.05;
  MatchingTask task = GenerateNyt(config);
  EXPECT_EQ(task.a.size(), 281u);
  EXPECT_EQ(task.b.size(), 90u);
  EXPECT_EQ(task.a.schema().NumProperties(), 38u);   // Table 6
  EXPECT_EQ(task.b.schema().NumProperties(), 110u);  // Table 6
  ExpectLinksResolve(task);
}

TEST(NytTest, DbpediaLabelsAreUris) {
  NytConfig config;
  config.scale = 0.05;
  MatchingTask task = GenerateNyt(config);
  auto label = task.b.schema().FindProperty("label");
  ASSERT_TRUE(label.has_value());
  size_t uri_count = 0;
  for (const auto& entity : task.b.entities()) {
    for (const auto& value : entity.Values(*label)) {
      if (value.rfind("http://dbpedia.org/resource/", 0) == 0) ++uri_count;
    }
  }
  EXPECT_EQ(uri_count, task.b.size());
}

TEST(NytTest, LowCoveragePerTable6) {
  NytConfig config;
  config.scale = 0.2;
  MatchingTask task = GenerateNyt(config);
  EXPECT_NEAR(ComputePropertyStats(task.a).MeanCoverage(), 0.3, 0.1);
  EXPECT_NEAR(ComputePropertyStats(task.b).MeanCoverage(), 0.2, 0.1);
}

// -------------------------------------------------------------- LinkedMDB

TEST(LinkedMdbTest, FullScaleMatchesTable5) {
  MatchingTask task = GenerateLinkedMdb();
  EXPECT_EQ(task.a.size(), 199u);
  EXPECT_EQ(task.b.size(), 174u);
  EXPECT_EQ(task.links.positives().size(), 100u);
  EXPECT_GE(task.links.negatives().size(), 100u);
  EXPECT_EQ(task.a.schema().NumProperties(), 100u);  // Table 6
  EXPECT_EQ(task.b.schema().NumProperties(), 46u);   // Table 6
  ExpectLinksResolve(task);
}

TEST(LinkedMdbTest, PlantsSameTitleDifferentYearNegatives) {
  MatchingTask task = GenerateLinkedMdb();
  auto resolved = task.links.Resolve(task.Source(), task.Target());
  ASSERT_TRUE(resolved.ok());
  auto lm_label = task.a.schema().FindProperty("label");
  auto db_name = task.b.schema().FindProperty("name");
  auto lm_date = task.a.schema().FindProperty("initial_release_date");
  auto db_date = task.b.schema().FindProperty("releaseDate");
  ASSERT_TRUE(lm_label && db_name && lm_date && db_date);

  // At least one negative pair shares the title but differs in year -
  // the corner case the paper's reference links deliberately include.
  size_t corner_cases = 0;
  for (const auto& pair : *resolved) {
    if (pair.is_match) continue;
    const ValueSet& ta = pair.a->Values(*lm_label);
    const ValueSet& tb = pair.b->Values(*db_name);
    const ValueSet& da = pair.a->Values(*lm_date);
    const ValueSet& db = pair.b->Values(*db_date);
    if (ta.empty() || tb.empty() || da.empty() || db.empty()) continue;
    // Compare title case-insensitively ignoring the "(film)" suffix.
    std::string name_b = tb[0];
    if (ta[0].size() <= name_b.size() &&
        da[0].substr(0, 4) != db[0].substr(0, 4)) {
      ++corner_cases;
    }
  }
  EXPECT_GT(corner_cases, 0u);
}

// -------------------------------------------------------- DBpediaDrugbank

TEST(DbpediaDrugbankTest, ScaledCountsAndSchemas) {
  DbpediaDrugbankConfig config;
  config.scale = 0.05;
  MatchingTask task = GenerateDbpediaDrugbank(config);
  EXPECT_EQ(task.a.size(), 242u);
  EXPECT_EQ(task.b.size(), 238u);
  EXPECT_EQ(task.a.schema().NumProperties(), 110u);  // Table 6
  EXPECT_EQ(task.b.schema().NumProperties(), 79u);   // Table 6
  ExpectLinksResolve(task);
}

TEST(DbpediaDrugbankTest, SynonymsAreMultiValued) {
  DbpediaDrugbankConfig config;
  config.scale = 0.1;
  MatchingTask task = GenerateDbpediaDrugbank(config);
  auto synonym = task.a.schema().FindProperty("synonym");
  ASSERT_TRUE(synonym.has_value());
  bool multi = false;
  for (const auto& entity : task.a.entities()) {
    if (entity.Values(*synonym).size() > 1) multi = true;
  }
  EXPECT_TRUE(multi);
}

TEST(DbpediaDrugbankTest, CoverageNearTable6) {
  DbpediaDrugbankConfig config;
  config.scale = 0.1;
  MatchingTask task = GenerateDbpediaDrugbank(config);
  EXPECT_NEAR(ComputePropertyStats(task.a).MeanCoverage(), 0.3, 0.1);
  EXPECT_NEAR(ComputePropertyStats(task.b).MeanCoverage(), 0.5, 0.1);
}

// All generators: negatives never coincide with positives.
TEST(AllGeneratorsTest, NegativesDisjointFromPositives) {
  auto check = [](const MatchingTask& task) {
    std::set<std::pair<std::string, std::string>> positives;
    for (const auto& link : task.links.positives()) {
      positives.insert({link.id_a, link.id_b});
    }
    for (const auto& link : task.links.negatives()) {
      EXPECT_FALSE(positives.count({link.id_a, link.id_b}))
          << task.name << ": " << link.id_a << " / " << link.id_b;
    }
  };
  CoraConfig cora;
  cora.scale = 0.1;
  check(GenerateCora(cora));
  RestaurantConfig restaurant;
  restaurant.scale = 0.5;
  check(GenerateRestaurant(restaurant));
  SiderDrugbankConfig sider;
  sider.scale = 0.05;
  check(GenerateSiderDrugbank(sider));
  NytConfig nyt;
  nyt.scale = 0.05;
  check(GenerateNyt(nyt));
  LinkedMdbConfig lmdb;
  lmdb.scale = 0.5;
  check(GenerateLinkedMdb(lmdb));
  DbpediaDrugbankConfig dbd;
  dbd.scale = 0.05;
  check(GenerateDbpediaDrugbank(dbd));
}

}  // namespace
}  // namespace genlink
