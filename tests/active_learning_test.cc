// Tests for the query-by-committee active learner.

#include <set>

#include <gtest/gtest.h>

#include "datasets/restaurant.h"
#include "gp/active_learning.h"

namespace genlink {
namespace {

class ActiveLearningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RestaurantConfig config;
    config.scale = 0.3;
    task_ = GenerateRestaurant(config);
    for (const auto& link : task_.links.positives()) {
      truth_.insert({link.id_a, link.id_b});
    }
  }

  ActiveLearningConfig FastConfig() {
    ActiveLearningConfig config;
    config.committee_size = 2;
    config.rounds = 3;
    config.learner.population_size = 40;
    config.learner.max_iterations = 5;
    config.learner.num_threads = 1;
    return config;
  }

  Oracle TruthOracle() {
    return [this](const CandidateLink& pair) {
      return truth_.count({pair.id_a, pair.id_b}) > 0;
    };
  }

  MatchingTask task_;
  std::set<std::pair<std::string, std::string>> truth_;
};

TEST_F(ActiveLearningTest, PoolContainsTrueMatches) {
  ActiveLearner learner(task_.Source(), task_.Target(), FastConfig());
  auto pool = learner.BuildPool();
  ASSERT_FALSE(pool.empty());
  size_t hits = 0;
  for (const auto& candidate : pool) {
    if (truth_.count({candidate.id_a, candidate.id_b})) ++hits;
  }
  // Token blocking must retain the vast majority of true matches.
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(truth_.size()), 0.9);
}

TEST_F(ActiveLearningTest, PoolCapIsRespected) {
  ActiveLearner learner(task_.Source(), task_.Target(), FastConfig());
  EXPECT_LE(learner.BuildPool(10).size(), 10u);
}

TEST_F(ActiveLearningTest, RunAccumulatesLabelsEachRound) {
  ActiveLearner learner(task_.Source(), task_.Target(), FastConfig());
  auto pool = learner.BuildPool(300);

  ReferenceLinkSet seed;
  seed.AddPositive(task_.links.positives()[0].id_a,
                   task_.links.positives()[0].id_b);
  seed.AddNegative(task_.links.negatives()[0].id_a,
                   task_.links.negatives()[0].id_b);

  Rng rng(3);
  auto result =
      learner.Run(seed, pool, TruthOracle(), &task_.links, rng);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->rounds.size(), 3u);
  // One oracle label per round.
  EXPECT_EQ(result->rounds[0].num_labels, 2u);
  EXPECT_EQ(result->rounds[1].num_labels, 3u);
  EXPECT_EQ(result->rounds[2].num_labels, 4u);
  EXPECT_EQ(result->labels.size(), 5u);
  EXPECT_TRUE(result->best_rule.Validate().ok());
}

TEST_F(ActiveLearningTest, RequiresBothSeedClasses) {
  ActiveLearner learner(task_.Source(), task_.Target(), FastConfig());
  ReferenceLinkSet only_positive;
  only_positive.AddPositive("a", "b");
  Rng rng(1);
  auto result = learner.Run(only_positive, {}, TruthOracle(), nullptr, rng);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ActiveLearningTest, OracleAnswersLandInTheRightClass) {
  ActiveLearner learner(task_.Source(), task_.Target(), FastConfig());
  auto pool = learner.BuildPool(200);

  ReferenceLinkSet seed;
  seed.AddPositive(task_.links.positives()[0].id_a,
                   task_.links.positives()[0].id_b);
  seed.AddNegative(task_.links.negatives()[0].id_a,
                   task_.links.negatives()[0].id_b);

  Rng rng(5);
  auto result = learner.Run(seed, pool, TruthOracle(), nullptr, rng);
  ASSERT_TRUE(result.ok());
  // Every accumulated positive label must be a true match and every
  // negative label a true non-match.
  for (const auto& link : result->labels.positives()) {
    EXPECT_TRUE(truth_.count({link.id_a, link.id_b}))
        << link.id_a << " / " << link.id_b;
  }
  for (const auto& link : result->labels.negatives()) {
    EXPECT_FALSE(truth_.count({link.id_a, link.id_b}))
        << link.id_a << " / " << link.id_b;
  }
}

}  // namespace
}  // namespace genlink
