// End-to-end smoke test for tools/genlink_cli: exports a synthetic
// Restaurant task to CSV, shells out to the real binary to learn a
// rule, and asserts the process exits 0 and the written rule parses.
//
// The path to the CLI binary is passed as argv[1] by CTest (see
// tests/CMakeLists.txt), so this suite provides its own main.

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/restaurant.h"
#include "io/csv.h"
#include "io/link_io.h"
#include "rule/linkage_rule.h"
#include "rule/xml.h"

namespace genlink {
namespace {

std::string g_cli_path;

// Serializes a dataset the way genlink_cli expects it back: a header
// row of "id" + property names, one row per entity. Multi-valued cells
// are joined with '|' (the CLI's loader keeps them as one value, which
// is fine for a smoke run).
std::string DatasetToCsv(const Dataset& dataset) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"id"};
  const Schema& schema = dataset.schema();
  for (const std::string& name : schema.property_names()) {
    header.push_back(name);
  }
  rows.push_back(std::move(header));
  for (const Entity& entity : dataset.entities()) {
    std::vector<std::string> row{entity.id()};
    for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
      const ValueSet& values = entity.Values(p);
      std::string cell;
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) cell += '|';
        cell += values[i];
      }
      row.push_back(std::move(cell));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "genlink_smoke_" + name;
}

TEST(CliSmokeTest, LearnsParseableRuleOnRestaurant) {
  ASSERT_FALSE(g_cli_path.empty())
      << "pass the genlink_cli path as argv[1] (CTest does this)";

  // A shrunken Restaurant dedup task keeps the learn step in seconds.
  RestaurantConfig config;
  config.scale = 0.3;
  MatchingTask task = GenerateRestaurant(config);
  ASSERT_GT(task.Source().size(), 0u);
  ASSERT_GT(task.links.positives().size(), 0u);

  const std::string data_path = TempPath("restaurant.csv");
  const std::string links_path = TempPath("links.csv");
  const std::string rule_path = TempPath("rule.xml");
  ASSERT_TRUE(WriteStringToFile(data_path, DatasetToCsv(task.Source())).ok());
  ASSERT_TRUE(WriteStringToFile(links_path, WriteLinksCsv(task.links)).ok());

  // Restaurant is a deduplication task: source is matched against
  // itself, so the same file serves as both sides.
  const std::string command = g_cli_path + " learn --source " + data_path +
                              " --target " + data_path + " --links " +
                              links_path + " --out " + rule_path +
                              " --population 50 --iterations 3 --seed 7";
  const int exit_code = std::system(command.c_str());
  ASSERT_EQ(exit_code, 0) << "command failed: " << command;

  auto xml = ReadFileToString(rule_path);
  ASSERT_TRUE(xml.ok()) << "CLI did not write " << rule_path;
  auto rule = ParseRuleXml(*xml);
  ASSERT_TRUE(rule.ok()) << "rule does not parse: "
                         << rule.status().ToString();
  EXPECT_NE(rule->root(), nullptr);

  std::remove(data_path.c_str());
  std::remove(links_path.c_str());
  std::remove(rule_path.c_str());
}

TEST(CliSmokeTest, LearnWithMatchWritesFullDatasetLinks) {
  ASSERT_FALSE(g_cli_path.empty())
      << "pass the genlink_cli path as argv[1] (CTest does this)";

  RestaurantConfig config;
  config.scale = 0.3;
  MatchingTask task = GenerateRestaurant(config);

  const std::string data_path = TempPath("match_restaurant.csv");
  const std::string links_path = TempPath("match_links.csv");
  const std::string rule_path = TempPath("match_rule.xml");
  const std::string out_path = TempPath("match_out.nt");
  ASSERT_TRUE(WriteStringToFile(data_path, DatasetToCsv(task.Source())).ok());
  ASSERT_TRUE(WriteStringToFile(links_path, WriteLinksCsv(task.links)).ok());

  // learn --match: learn, then link the FULL datasets with the learned
  // rule through the value-store matcher and write owl:sameAs triples.
  const std::string command = g_cli_path + " learn --source " + data_path +
                              " --target " + data_path + " --links " +
                              links_path + " --out " + rule_path +
                              " --population 50 --iterations 3 --seed 7" +
                              " --match " + out_path;
  const int exit_code = std::system(command.c_str());
  ASSERT_EQ(exit_code, 0) << "command failed: " << command;

  auto triples = ReadFileToString(out_path);
  ASSERT_TRUE(triples.ok()) << "CLI did not write " << out_path;
  // The written links parse back as owl:sameAs N-Triples and are
  // non-empty (Restaurant at this scale always links some duplicates).
  auto parsed = ReadSameAsLinks(*triples);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed->positives().size(), 0u);

  std::remove(data_path.c_str());
  std::remove(links_path.c_str());
  std::remove(rule_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace genlink

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) genlink::g_cli_path = argv[1];
  return RUN_ALL_TESTS();
}
