// End-to-end smoke test for tools/genlink_cli: exports a synthetic
// Restaurant task to CSV, shells out to the real binary to learn a
// rule, and asserts the process exits 0 and the written rule parses.
//
// The path to the CLI binary is passed as argv[1] by CTest (see
// tests/CMakeLists.txt), so this suite provides its own main.

#include <sys/wait.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datasets/restaurant.h"
#include "io/csv.h"
#include "io/link_io.h"
#include "rule/linkage_rule.h"
#include "rule/xml.h"

namespace genlink {
namespace {

std::string g_cli_path;

// Serializes a dataset the way genlink_cli expects it back: a header
// row of "id" + property names, one row per entity. Multi-valued cells
// are joined with '|' (the CLI's loader keeps them as one value, which
// is fine for a smoke run).
std::string DatasetToCsv(const Dataset& dataset) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"id"};
  const Schema& schema = dataset.schema();
  for (const std::string& name : schema.property_names()) {
    header.push_back(name);
  }
  rows.push_back(std::move(header));
  for (const Entity& entity : dataset.entities()) {
    std::vector<std::string> row{entity.id()};
    for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
      const ValueSet& values = entity.Values(p);
      std::string cell;
      for (size_t i = 0; i < values.size(); ++i) {
        if (i > 0) cell += '|';
        cell += values[i];
      }
      row.push_back(std::move(cell));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(rows);
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "genlink_smoke_" + name;
}

TEST(CliSmokeTest, LearnsParseableRuleOnRestaurant) {
  ASSERT_FALSE(g_cli_path.empty())
      << "pass the genlink_cli path as argv[1] (CTest does this)";

  // A shrunken Restaurant dedup task keeps the learn step in seconds.
  RestaurantConfig config;
  config.scale = 0.3;
  MatchingTask task = GenerateRestaurant(config);
  ASSERT_GT(task.Source().size(), 0u);
  ASSERT_GT(task.links.positives().size(), 0u);

  const std::string data_path = TempPath("restaurant.csv");
  const std::string links_path = TempPath("links.csv");
  const std::string rule_path = TempPath("rule.xml");
  ASSERT_TRUE(WriteStringToFile(data_path, DatasetToCsv(task.Source())).ok());
  ASSERT_TRUE(WriteStringToFile(links_path, WriteLinksCsv(task.links)).ok());

  // Restaurant is a deduplication task: source is matched against
  // itself, so the same file serves as both sides.
  const std::string command = g_cli_path + " learn --source " + data_path +
                              " --target " + data_path + " --links " +
                              links_path + " --out " + rule_path +
                              " --population 50 --iterations 3 --seed 7";
  const int exit_code = std::system(command.c_str());
  ASSERT_EQ(exit_code, 0) << "command failed: " << command;

  auto xml = ReadFileToString(rule_path);
  ASSERT_TRUE(xml.ok()) << "CLI did not write " << rule_path;
  auto rule = ParseRuleXml(*xml);
  ASSERT_TRUE(rule.ok()) << "rule does not parse: "
                         << rule.status().ToString();
  EXPECT_NE(rule->root(), nullptr);

  std::remove(data_path.c_str());
  std::remove(links_path.c_str());
  std::remove(rule_path.c_str());
}

TEST(CliSmokeTest, LearnWithMatchWritesFullDatasetLinks) {
  ASSERT_FALSE(g_cli_path.empty())
      << "pass the genlink_cli path as argv[1] (CTest does this)";

  RestaurantConfig config;
  config.scale = 0.3;
  MatchingTask task = GenerateRestaurant(config);

  const std::string data_path = TempPath("match_restaurant.csv");
  const std::string links_path = TempPath("match_links.csv");
  const std::string rule_path = TempPath("match_rule.xml");
  const std::string out_path = TempPath("match_out.nt");
  ASSERT_TRUE(WriteStringToFile(data_path, DatasetToCsv(task.Source())).ok());
  ASSERT_TRUE(WriteStringToFile(links_path, WriteLinksCsv(task.links)).ok());

  // learn --match: learn, then link the FULL datasets with the learned
  // rule through the value-store matcher and write owl:sameAs triples.
  const std::string command = g_cli_path + " learn --source " + data_path +
                              " --target " + data_path + " --links " +
                              links_path + " --out " + rule_path +
                              " --population 50 --iterations 3 --seed 7" +
                              " --match " + out_path;
  const int exit_code = std::system(command.c_str());
  ASSERT_EQ(exit_code, 0) << "command failed: " << command;

  auto triples = ReadFileToString(out_path);
  ASSERT_TRUE(triples.ok()) << "CLI did not write " << out_path;
  // The written links parse back as owl:sameAs N-Triples and are
  // non-empty (Restaurant at this scale always links some duplicates).
  auto parsed = ReadSameAsLinks(*triples);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_GT(parsed->positives().size(), 0u);

  std::remove(data_path.c_str());
  std::remove(links_path.c_str());
  std::remove(rule_path.c_str());
  std::remove(out_path.c_str());
}

// Runs `command`, capturing stdout+stderr into *output. Returns the
// exit code (-1 if the process could not be run).
int RunCapture(const std::string& command, std::string* output) {
  const std::string capture_path = TempPath("capture.txt");
  const int code = std::system((command + " > " + capture_path + " 2>&1").c_str());
  auto content = ReadFileToString(capture_path);
  *output = content.ok() ? *content : "";
  std::remove(capture_path.c_str());
  if (code == -1) return -1;
  return WEXITSTATUS(code);
}

TEST(CliSmokeTest, VersionFlagPrintsVersion) {
  ASSERT_FALSE(g_cli_path.empty());
  std::string output;
  EXPECT_EQ(RunCapture(g_cli_path + " --version", &output), 0);
  EXPECT_NE(output.find("genlink "), std::string::npos) << output;
}

TEST(CliSmokeTest, EverySubcommandPrintsItsOwnHelp) {
  ASSERT_FALSE(g_cli_path.empty());
  for (const char* command : {"learn", "match", "query", "eval"}) {
    std::string output;
    EXPECT_EQ(RunCapture(g_cli_path + " " + command + " --help", &output), 0);
    EXPECT_NE(output.find(std::string("usage: genlink ") + command),
              std::string::npos)
        << command << " help:\n" << output;
  }
  // The top-level help lists all subcommands.
  std::string output;
  EXPECT_EQ(RunCapture(g_cli_path + " --help", &output), 0);
  for (const char* command : {"learn", "match", "query", "eval"}) {
    EXPECT_NE(output.find(command), std::string::npos) << output;
  }
}

TEST(CliSmokeTest, UnknownFlagErrorNamesTheFlag) {
  ASSERT_FALSE(g_cli_path.empty());
  std::string output;
  EXPECT_EQ(RunCapture(g_cli_path + " match --frobnicate 1", &output), 2);
  EXPECT_NE(output.find("--frobnicate"), std::string::npos) << output;
  EXPECT_NE(output.find("match --help"), std::string::npos) << output;

  // A value flag without its value names the flag too.
  EXPECT_EQ(RunCapture(g_cli_path + " match --rule", &output), 2);
  EXPECT_NE(output.find("--rule"), std::string::npos) << output;

  // Missing required flags are named.
  EXPECT_EQ(RunCapture(g_cli_path + " eval", &output), 2);
  EXPECT_NE(output.find("--source"), std::string::npos) << output;

  // Unknown subcommands fall back to the top-level usage.
  EXPECT_EQ(RunCapture(g_cli_path + " transmogrify", &output), 2);
  EXPECT_NE(output.find("transmogrify"), std::string::npos) << output;
}

TEST(CliSmokeTest, MalformedNumericFlagValuesAreRejectedByName) {
  ASSERT_FALSE(g_cli_path.empty());
  // Numeric flags are validated before any file is opened, so none of
  // these need real datasets; each must exit 2 naming the flag rather
  // than silently running with the default.
  struct Case {
    const char* command_line;
    const char* flag;
  };
  const Case cases[] = {
      {" match --source a --target b --rule r --threshold 0.7x",
       "--threshold"},
      {" match --source a --target b --rule r --threads lots", "--threads"},
      {" learn --source a --target b --links l --population many",
       "--population"},
      {" learn --source a --target b --links l --match-threshold abc",
       "--match-threshold"},
      {" learn --source a --target b --links l --islands 0", "--islands"},
      {" query --target b --rule r --threshold ,5", "--threshold"},
  };
  for (const Case& c : cases) {
    std::string output;
    EXPECT_EQ(RunCapture(g_cli_path + c.command_line, &output), 2)
        << c.command_line << "\n" << output;
    EXPECT_NE(output.find(c.flag), std::string::npos)
        << c.command_line << "\n" << output;
  }
}

// The deployment loop end to end: learn a rule with --save-artifact,
// then serve CSV queries against it with `genlink query` and check the
// streamed links parse and cover some known duplicates.
TEST(CliSmokeTest, QueryServesArtifactLearnedByLearn) {
  ASSERT_FALSE(g_cli_path.empty());

  RestaurantConfig config;
  config.scale = 0.3;
  MatchingTask task = GenerateRestaurant(config);

  const std::string data_path = TempPath("query_restaurant.csv");
  const std::string links_path = TempPath("query_links.csv");
  const std::string artifact_path = TempPath("query_artifact.gla");
  const std::string out_path = TempPath("query_out.csv");
  ASSERT_TRUE(WriteStringToFile(data_path, DatasetToCsv(task.Source())).ok());
  ASSERT_TRUE(WriteStringToFile(links_path, WriteLinksCsv(task.links)).ok());

  const std::string learn_command =
      g_cli_path + " learn --source " + data_path + " --target " + data_path +
      " --links " + links_path + " --save-artifact " + artifact_path +
      " --population 50 --iterations 3 --seed 7 > /dev/null 2>&1";
  ASSERT_EQ(std::system(learn_command.c_str()), 0) << learn_command;

  // Serve the corpus itself as the query stream: duplicates should be
  // found in both orientations.
  std::string output;
  const int exit_code =
      RunCapture(g_cli_path + " query --target " + data_path + " --artifact " +
                     artifact_path + " --entities " + data_path + " --out " +
                     out_path,
                 &output);
  EXPECT_EQ(exit_code, 0) << output;
  EXPECT_NE(output.find("served "), std::string::npos) << output;

  auto csv = ReadFileToString(out_path);
  ASSERT_TRUE(csv.ok()) << "query did not write " << out_path;
  EXPECT_EQ(csv->rfind("id_a,id_b,score\n", 0), 0u) << *csv;
  // At least one known duplicate pair should have been served, and —
  // since the query stream IS the corpus — never a record as its own
  // match.
  size_t links_served = 0;
  std::istringstream rows(*csv);
  std::string row;
  std::getline(rows, row);  // header
  while (std::getline(rows, row)) {
    const size_t comma = row.find(',');
    ASSERT_NE(comma, std::string::npos) << row;
    const std::string id_a = row.substr(0, comma);
    const std::string rest = row.substr(comma + 1);
    EXPECT_NE(rest.rfind(id_a + ",", 0), 0u) << "self link served: " << row;
    ++links_served;
  }
  EXPECT_GT(links_served, 0u) << *csv;

  std::remove(data_path.c_str());
  std::remove(links_path.c_str());
  std::remove(artifact_path.c_str());
  std::remove(out_path.c_str());
}

}  // namespace
}  // namespace genlink

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  if (argc > 1) genlink::g_cli_path = argv[1];
  return RUN_ALL_TESTS();
}
