// Robustness tests for the serve stack (serve/http.h,
// serve/serving_state.h, serve/server.h): the HTTP parser's hard
// limits, the daemon's deadline / admission-control / drain behavior
// under injected faults (common/failpoint.h), and graceful degradation
// on corrupt artifact reloads — the old rule must keep serving
// bit-identical answers.
//
// Daemon tests bind 127.0.0.1 on an ephemeral port and talk to it over
// real sockets (HttpCall plus a few raw-socket probes for the stalled
// and shed paths), so the whole listener/queue/worker pipeline is
// exercised, not a mock.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/matcher_index.h"
#include "common/failpoint.h"
#include "io/artifact.h"
#include "io/csv.h"
#include "io/link_io.h"
#include "model/dataset.h"
#include "rule/builder.h"
#include "serve/http.h"
#include "serve/metrics.h"
#include "serve/server.h"
#include "serve/serving_state.h"

namespace genlink {
namespace {

using HttpState = HttpRequestParser::State;

// ---------------------------------------------------------------------------
// HTTP parser + serialization.

TEST(HttpParserTest, ParsesRequestFedByteByByte) {
  const std::string wire =
      "POST /match?debug=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "content-length: 5\r\n"
      "Content-Type: text/csv\r\n"
      "\r\n"
      "hello";
  HttpRequestParser parser(8192, 1 << 20);
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    ASSERT_EQ(parser.Consume(std::string_view(&wire[i], 1)),
              HttpState::kNeedMore)
        << "byte " << i;
    EXPECT_TRUE(parser.started());
  }
  ASSERT_EQ(parser.Consume(std::string_view(&wire.back(), 1)),
            HttpState::kComplete);
  const HttpRequest& request = parser.request();
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/match?debug=1");
  EXPECT_EQ(request.Path(), "/match");
  EXPECT_EQ(request.body, "hello");
  // Case-insensitive header lookup.
  ASSERT_NE(request.FindHeader("CONTENT-LENGTH"), nullptr);
  EXPECT_EQ(*request.FindHeader("CONTENT-LENGTH"), "5");
  ASSERT_NE(request.FindHeader("content-type"), nullptr);
  EXPECT_EQ(*request.FindHeader("content-type"), "text/csv");
  EXPECT_EQ(request.FindHeader("x-missing"), nullptr);
}

TEST(HttpParserTest, KeepAliveCarriesPipelinedBytesAcrossReset) {
  HttpRequestParser parser(8192, 1 << 20);
  // Two full requests in one chunk: the second must survive Reset().
  ASSERT_EQ(parser.Consume("GET /healthz HTTP/1.1\r\n\r\n"
                           "GET /varz HTTP/1.1\r\n\r\n"),
            HttpState::kComplete);
  EXPECT_EQ(parser.request().Path(), "/healthz");
  parser.Reset();
  ASSERT_EQ(parser.state(), HttpState::kComplete);
  EXPECT_EQ(parser.request().Path(), "/varz");
  parser.Reset();
  EXPECT_EQ(parser.state(), HttpState::kNeedMore);
  EXPECT_FALSE(parser.started());
}

TEST(HttpParserTest, MalformedRequestLineIs400) {
  HttpRequestParser parser(8192, 1 << 20);
  EXPECT_EQ(parser.Consume("this is not http\r\n\r\n"), HttpState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, RejectsTransferEncoding) {
  HttpRequestParser parser(8192, 1 << 20);
  EXPECT_EQ(parser.Consume("POST /match HTTP/1.1\r\n"
                           "Transfer-Encoding: chunked\r\n\r\n"),
            HttpState::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParserTest, OversizedHeaderBlockIs431) {
  HttpRequestParser parser(/*max_header_bytes=*/128, 1 << 20);
  std::string wire = "GET / HTTP/1.1\r\nX-Padding: ";
  wire += std::string(256, 'a');
  EXPECT_EQ(parser.Consume(wire), HttpState::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParserTest, OversizedDeclaredBodyIs413) {
  HttpRequestParser parser(8192, /*max_body_bytes=*/64);
  EXPECT_EQ(parser.Consume("POST /match HTTP/1.1\r\n"
                           "Content-Length: 65\r\n\r\n"),
            HttpState::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

TEST(HttpParserTest, SerializeEmitsStatusLineAndContentLength) {
  HttpResponse response;
  response.status = 503;
  response.extra_headers.emplace_back("Retry-After", "1");
  response.body = "busy\n";
  const std::string wire = SerializeHttpResponse(response);
  EXPECT_EQ(wire.find("HTTP/1.1 503 Service Unavailable\r\n"), 0u);
  EXPECT_NE(wire.find("Content-Length: 5\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 1\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\nbusy\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Shared corpus / rule / artifact helpers (mirrors
// tests/stress_swap_tsan_test.cc so answers are comparable).

Dataset MakeCorpus(size_t n) {
  Dataset dataset("corpus");
  PropertyId name = dataset.schema().AddProperty("name");
  PropertyId city = dataset.schema().AddProperty("city");
  const char* cities[] = {"berlin", "mannheim", "leipzig"};
  for (size_t i = 0; i < n; ++i) {
    std::string id = "e";
    id += std::to_string(i);
    std::string record = "record number ";
    record += std::to_string(i / 2);
    Entity entity(id);
    entity.AddValue(name, record);
    entity.AddValue(city, cities[i % 3]);
    EXPECT_TRUE(dataset.AddEntity(std::move(entity)).ok());
  }
  return dataset;
}

LinkageRule NameRule() {
  auto rule = RuleBuilder()
                  .Compare("jaccard", 0.5, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

LinkageRule NameCityRule() {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.5, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 2.0, Prop("city").Lower(),
                           Prop("city").Lower())
                  .End()
                  .Build();
  EXPECT_TRUE(rule.ok());
  return std::move(rule).value();
}

std::string WriteArtifactFile(const std::string& path, LinkageRule rule,
                              const std::string& name) {
  RuleArtifact artifact;
  artifact.name = name;
  artifact.rule = std::move(rule);
  EXPECT_TRUE(SaveArtifact(path, artifact).ok()) << path;
  return path;
}

// ---------------------------------------------------------------------------
// ServingState: artifact failure paths degrade to stale, never broken.

TEST(ServingStateTest, FailedReloadsKeepTheOldIndexServing) {
  const Dataset corpus = MakeCorpus(20);
  const std::string good = ::testing::TempDir() + "serving_state_good.artifact";
  const std::string bad = ::testing::TempDir() + "serving_state_bad.artifact";
  WriteArtifactFile(good, NameRule(), "good");

  ServingState state(corpus, /*num_threads=*/1);
  EXPECT_EQ(state.index(), nullptr);
  ASSERT_TRUE(state.ReloadFromFile(good).ok());
  const std::shared_ptr<const MatcherIndex> live = state.index();
  ASSERT_NE(live, nullptr);
  EXPECT_EQ(state.snapshot().generation, 1u);
  EXPECT_FALSE(state.snapshot().stale);

  const std::string good_text = ReadFileToString(good).value();
  struct Case {
    const char* label;
    std::string content;
  };
  const Case cases[] = {
      {"truncated", good_text.substr(0, good_text.find("---"))},
      {"unknown version", "genlink-artifact v99\n---\n<LinkageRule/>\n"},
      {"unknown key",
       "genlink-artifact v1\nfrobnicate: yes\n---\n<LinkageRule/>\n"},
  };
  uint64_t failures = 0;
  for (const Case& c : cases) {
    ASSERT_TRUE(WriteStringToFile(bad, c.content).ok());
    const Status status = state.ReloadFromFile(bad);
    EXPECT_FALSE(status.ok()) << c.label;
    ++failures;
    const ServingState::Snapshot snapshot = state.snapshot();
    EXPECT_TRUE(snapshot.stale) << c.label;
    EXPECT_EQ(snapshot.failed_reloads, failures) << c.label;
    EXPECT_FALSE(snapshot.last_error.empty()) << c.label;
    EXPECT_EQ(snapshot.generation, 1u) << c.label;
    // The live index is the SAME object — not rebuilt, not nulled.
    EXPECT_EQ(state.index().get(), live.get()) << c.label;
  }

  // A missing file is just another failure mode.
  EXPECT_FALSE(
      state.ReloadFromFile(::testing::TempDir() + "does_not_exist.artifact")
          .ok());
  EXPECT_EQ(state.index().get(), live.get());

  // Recovery: a good artifact clears stale and bumps the generation.
  WriteArtifactFile(good, NameCityRule(), "good-v2");
  ASSERT_TRUE(state.ReloadFromFile(good).ok());
  EXPECT_FALSE(state.snapshot().stale);
  EXPECT_EQ(state.snapshot().generation, 2u);
  EXPECT_NE(state.index().get(), live.get());
}

// ---------------------------------------------------------------------------
// Daemon fixture + raw-socket probes.

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendRaw(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::string RecvUntilClosed(int fd) {
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

class ServeDaemonTest : public ::testing::Test {
 protected:
  ServeDaemonTest() : corpus_(MakeCorpus(30)) {}

  void TearDown() override { Failpoints::Instance().DisarmAll(); }

  // Writes the artifact, deploys it into state_, starts the daemon.
  void StartDaemon(ServeOptions options, LinkageRule rule = NameRule()) {
    artifact_path_ = ::testing::TempDir() + "serve_test_" +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name() +
                     ".artifact";
    WriteArtifactFile(artifact_path_, std::move(rule), "serve-test");
    state_ = std::make_unique<ServingState>(corpus_, /*num_threads=*/1);
    ASSERT_TRUE(state_->ReloadFromFile(artifact_path_).ok());
    daemon_ = std::make_unique<ServeDaemon>(*state_, options);
    ASSERT_TRUE(daemon_->Start().ok());
  }

  // StartDaemon in live mode: /upsert, /delete and /compact mutate the
  // corpus between queries (live/live_corpus.h).
  void StartLiveDaemon(ServeOptions options, LinkageRule rule = NameRule(),
                       LiveCorpusOptions live_options = {}) {
    artifact_path_ = ::testing::TempDir() + "serve_test_" +
                     ::testing::UnitTest::GetInstance()
                         ->current_test_info()
                         ->name() +
                     ".artifact";
    WriteArtifactFile(artifact_path_, std::move(rule), "serve-live-test");
    state_ = std::make_unique<ServingState>(corpus_, /*num_threads=*/1,
                                            live_options);
    ASSERT_TRUE(state_->ReloadFromFile(artifact_path_).ok());
    daemon_ = std::make_unique<ServeDaemon>(*state_, options);
    ASSERT_TRUE(daemon_->Start().ok());
  }

  uint16_t port() const { return daemon_->port(); }

  Dataset corpus_;
  std::string artifact_path_;
  std::unique_ptr<ServingState> state_;
  std::unique_ptr<ServeDaemon> daemon_;
};

TEST_F(ServeDaemonTest, HealthzVarzAndRouting) {
  StartDaemon({});
  auto health = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
  EXPECT_EQ(health->body, "ok generation=1 stale=0\n");

  auto varz = HttpCall(port(), "GET", "/varz");
  ASSERT_TRUE(varz.ok());
  EXPECT_EQ(varz->status, 200);
  EXPECT_NE(varz->body.find("serve_generation 1\n"), std::string::npos);
  EXPECT_NE(varz->body.find("serve_stale 0\n"), std::string::npos);
  EXPECT_NE(varz->body.find("serve_shed 0\n"), std::string::npos);
  EXPECT_NE(varz->body.find("serve_latency_p99_seconds "), std::string::npos);

  auto missing = HttpCall(port(), "GET", "/nope");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto wrong_method = HttpCall(port(), "GET", "/match");
  ASSERT_TRUE(wrong_method.ok());
  EXPECT_EQ(wrong_method->status, 405);
  auto wrong_method2 = HttpCall(port(), "POST", "/healthz", "x");
  ASSERT_TRUE(wrong_method2.ok());
  EXPECT_EQ(wrong_method2->status, 405);
}

TEST_F(ServeDaemonTest, MatchIsBitIdenticalToDirectMatchBatch) {
  StartDaemon({});
  const std::string query_csv =
      "name,city\n"
      "record number 0,berlin\n"
      "record number 7,leipzig\n";
  auto response = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  ASSERT_EQ(response->status, 200);
  EXPECT_EQ(response->content_type, "text/csv");

  // Reference: the same artifact deployed by hand, the same CSV parse,
  // the same batch surface — the daemon must add nothing and lose
  // nothing in between.
  Result<RuleArtifact> artifact = LoadArtifact(artifact_path_);
  ASSERT_TRUE(artifact.ok());
  MatchOptions options = artifact->options;
  options.num_threads = 1;
  auto index = MatcherIndex::Build(corpus_, artifact->rule, options);
  std::istringstream in{query_csv};
  CsvEntityStream queries(in, CsvDatasetOptions{});
  std::vector<Entity> entities;
  Entity entity;
  while (queries.Next(&entity)) entities.push_back(std::move(entity));
  ASSERT_TRUE(queries.status().ok());
  ASSERT_EQ(entities.size(), 2u);
  std::string expected{kGeneratedLinksCsvHeader};
  for (const GeneratedLink& link :
       index->MatchBatch(entities, queries.schema())) {
    expected += GeneratedLinkCsvRow(link);
  }
  EXPECT_EQ(response->body, expected);
  // Sanity: the corpus really produces links for these queries.
  EXPECT_NE(expected, kGeneratedLinksCsvHeader);
}

TEST_F(ServeDaemonTest, MalformedQueryCsvIs400) {
  StartDaemon({});
  auto response =
      HttpCall(port(), "POST", "/match", "name\n\"unterminated quote\n");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->status, 400);
}

TEST_F(ServeDaemonTest, DeadlineExceededAnswers504) {
  ServeOptions options;
  options.request_deadline = std::chrono::milliseconds(150);
  StartDaemon(options);
  // A handler that cannot make progress: blocks until the request's
  // CancelToken fires.
  Failpoints::Instance().Arm("serve.match_block", {});
  auto response =
      HttpCall(port(), "POST", "/match", "name\nrecord number 0\n");
  Failpoints::Instance().DisarmAll();
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(response->status, 504);
  EXPECT_GE(daemon_->counters().deadline_hits.load(), 1u);

  // The worker is free again: the next request is served normally.
  auto health = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->status, 200);
}

TEST_F(ServeDaemonTest, OverloadShedsWith503AndRetryAfter) {
  ServeOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  options.request_deadline = std::chrono::milliseconds(5000);
  options.read_timeout = std::chrono::milliseconds(500);
  options.retry_after_seconds = 7;
  StartDaemon(options);

  // Jam the single worker with a request that blocks in the handler
  // until the failpoint is disarmed (or its 5s deadline fires).
  Failpoints::Instance().Arm("serve.match_block", {});
  const int conn1 = RawConnect(port());
  ASSERT_GE(conn1, 0);
  ASSERT_TRUE(SendRaw(conn1, "POST /match HTTP/1.1\r\n"
                             "Content-Length: 5\r\n\r\nname\n"));
  while (daemon_->counters().requests.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Fill the one queue slot with an idle connection.
  const int conn2 = RawConnect(port());
  ASSERT_GE(conn2, 0);
  while (daemon_->counters().accepted.load() < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  auto shed = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(shed.ok()) << shed.status().ToString();
  EXPECT_EQ(shed->status, 503);
  bool saw_retry_after = false;
  for (const auto& [key, value] : shed->extra_headers) {
    if (key == "Retry-After") {
      saw_retry_after = true;
      EXPECT_EQ(value, "7");
    }
  }
  EXPECT_TRUE(saw_retry_after);
  EXPECT_GE(daemon_->counters().shed.load(), 1u);

  // Release the jam; the daemon recovers and serves again.
  Failpoints::Instance().DisarmAll();
  ::close(conn1);
  ::close(conn2);
  for (int attempt = 0; attempt < 50; ++attempt) {
    auto health = HttpCall(port(), "GET", "/healthz");
    if (health.ok() && health->status == 200) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  FAIL() << "daemon did not recover after the overload was released";
}

TEST_F(ServeDaemonTest, StalledStartedRequestAnswers408) {
  ServeOptions options;
  options.read_timeout = std::chrono::milliseconds(200);
  StartDaemon(options);
  const int fd = RawConnect(port());
  ASSERT_GE(fd, 0);
  // A started-but-never-finished request: declared body never arrives.
  ASSERT_TRUE(SendRaw(fd, "POST /match HTTP/1.1\r\nContent-Length: 10\r\n\r\nab"));
  const std::string response = RecvUntilClosed(fd);
  ::close(fd);
  EXPECT_NE(response.find("HTTP/1.1 408 "), std::string::npos) << response;
  EXPECT_GE(daemon_->counters().deadline_hits.load(), 1u);
}

TEST_F(ServeDaemonTest, KeepAliveServesPipelinedRequests) {
  StartDaemon({});
  const int fd = RawConnect(port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendRaw(fd,
                      "GET /healthz HTTP/1.1\r\n\r\n"
                      "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n"));
  const std::string wire = RecvUntilClosed(fd);
  ::close(fd);
  // Two full responses on one connection.
  size_t first = wire.find("ok generation=1 stale=0\n");
  ASSERT_NE(first, std::string::npos) << wire;
  EXPECT_NE(wire.find("ok generation=1 stale=0\n", first + 1),
            std::string::npos)
      << wire;
}

TEST_F(ServeDaemonTest, InjectedRecvErrorIsCountedAndSurvived) {
  StartDaemon({});
  Failpoints::Instance().Arm("serve.recv_error",
                             {.count = 1, .error_code = ECONNRESET});
  // The injected reset kills this connection before a response.
  auto failed = HttpCall(port(), "GET", "/healthz", {}, "text/plain",
                         /*timeout_ms=*/2000);
  EXPECT_FALSE(failed.ok());
  EXPECT_GE(daemon_->counters().io_errors.load(), 1u);
  // One-shot fault: the daemon keeps serving.
  auto health = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
}

TEST_F(ServeDaemonTest, InjectedSendErrorIsCountedAndSurvived) {
  StartDaemon({});
  Failpoints::Instance().Arm("serve.send_error",
                             {.count = 1, .error_code = EPIPE});
  auto failed = HttpCall(port(), "GET", "/healthz", {}, "text/plain",
                         /*timeout_ms=*/2000);
  EXPECT_FALSE(failed.ok());
  EXPECT_GE(daemon_->counters().io_errors.load(), 1u);
  auto health = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok()) << health.status().ToString();
  EXPECT_EQ(health->status, 200);
}

TEST_F(ServeDaemonTest, CorruptReloadNeverChangesServedAnswers) {
  StartDaemon({});
  const std::string query_csv = "name,city\nrecord number 3,berlin\n";
  auto baseline = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->status, 200);

  // Corrupt the artifact file in place, then ask the daemon to reload.
  ASSERT_TRUE(WriteStringToFile(artifact_path_,
                                "genlink-artifact v99\nnot an artifact\n")
                  .ok());
  auto reload = HttpCall(port(), "POST", "/reload", artifact_path_);
  ASSERT_TRUE(reload.ok());
  EXPECT_EQ(reload->status, 500);

  // Degraded, not broken: health reports stale, answers are the exact
  // bytes the old rule served before the failed push.
  auto health = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->body, "ok generation=1 stale=1\n");
  auto after = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after->status, 200);
  EXPECT_EQ(after->body, baseline->body);
  auto varz = HttpCall(port(), "GET", "/varz");
  ASSERT_TRUE(varz.ok());
  EXPECT_NE(varz->body.find("serve_failed_reloads 1\n"), std::string::npos);

  // Recovery: push a good artifact with a different rule.
  WriteArtifactFile(artifact_path_, NameCityRule(), "serve-test-v2");
  auto reload2 = HttpCall(port(), "POST", "/reload", artifact_path_);
  ASSERT_TRUE(reload2.ok());
  EXPECT_EQ(reload2->status, 200);
  EXPECT_EQ(reload2->body, "reloaded generation=2\n");
  auto health2 = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health2.ok());
  EXPECT_EQ(health2->body, "ok generation=2 stale=0\n");
}

// ---------------------------------------------------------------------------
// Live mode: streaming mutations through the daemon.

TEST_F(ServeDaemonTest, LiveModeIsOffByDefault) {
  StartDaemon({});
  for (const char* path : {"/upsert", "/delete", "/compact"}) {
    auto response = HttpCall(port(), "POST", path, "x\n");
    ASSERT_TRUE(response.ok()) << path;
    EXPECT_EQ(response->status, 404) << path;
  }
  // And /healthz carries no epoch outside live mode.
  auto health = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->body.find("epoch="), std::string::npos);
}

TEST_F(ServeDaemonTest, LiveUpsertDeleteCompactRoundTrip) {
  ServeOptions options;
  options.csv.id_column = "id";
  StartLiveDaemon(options);

  // Live health carries generation AND epoch (the CI probe greps the
  // generation/stale prefix as a substring, so epoch is appended).
  auto health = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->body, "ok generation=1 stale=0 epoch=0\n");

  const std::string query_csv = "id,name,city\nq,record number 0,berlin\n";
  auto baseline = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(baseline.ok());
  ASSERT_EQ(baseline->status, 200);
  EXPECT_NE(baseline->body, kGeneratedLinksCsvHeader);

  // Upsert a new duplicate of record 0; one batch = one epoch.
  auto upsert = HttpCall(port(), "POST", "/upsert",
                         "id,name,city\nlive0,record number 0,berlin\n");
  ASSERT_TRUE(upsert.ok());
  ASSERT_EQ(upsert->status, 200) << upsert->body;
  EXPECT_EQ(upsert->body, "upserted 1 epoch=1\n");

  // The served answer now includes the new entity, bit-identically to
  // a fresh index over the mutated corpus.
  auto after_upsert = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(after_upsert.ok());
  ASSERT_EQ(after_upsert->status, 200);
  EXPECT_NE(after_upsert->body, baseline->body);
  EXPECT_NE(after_upsert->body.find("live0"), std::string::npos);
  {
    Dataset mutated = MakeCorpus(30);
    Entity fresh("live0");
    fresh.AddValue(*mutated.schema().FindProperty("name"), "record number 0");
    fresh.AddValue(*mutated.schema().FindProperty("city"), "berlin");
    ASSERT_TRUE(mutated.AddEntity(std::move(fresh)).ok());
    Result<RuleArtifact> artifact = LoadArtifact(artifact_path_);
    ASSERT_TRUE(artifact.ok());
    MatchOptions match_options = artifact->options;
    match_options.num_threads = 1;
    auto index = MatcherIndex::Build(mutated, artifact->rule, match_options);
    std::istringstream in{query_csv};
    CsvDatasetOptions csv;
    csv.id_column = "id";
    CsvEntityStream queries(in, csv);
    std::vector<Entity> entities;
    Entity entity;
    while (queries.Next(&entity)) entities.push_back(std::move(entity));
    ASSERT_TRUE(queries.status().ok());
    std::string expected{kGeneratedLinksCsvHeader};
    for (const GeneratedLink& link :
         index->MatchBatch(entities, queries.schema())) {
      expected += GeneratedLinkCsvRow(link);
    }
    EXPECT_EQ(after_upsert->body, expected);
  }

  // Delete restores the baseline answer bytes.
  auto removed = HttpCall(port(), "POST", "/delete", "live0\n");
  ASSERT_TRUE(removed.ok());
  ASSERT_EQ(removed->status, 200) << removed->body;
  EXPECT_EQ(removed->body, "deleted 1 epoch=2\n");
  auto after_delete = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(after_delete.ok());
  EXPECT_EQ(after_delete->body, baseline->body);

  // Deleting an id that is not live is NotFound and changes nothing.
  auto missing = HttpCall(port(), "POST", "/delete", "live0\n");
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status, 404);
  auto empty_upsert = HttpCall(port(), "POST", "/upsert", "");
  ASSERT_TRUE(empty_upsert.ok());
  EXPECT_EQ(empty_upsert->status, 400);

  // Compact drains the delta log and publishes another epoch; the
  // answer bytes do not move.
  auto compact = HttpCall(port(), "POST", "/compact", "");
  ASSERT_TRUE(compact.ok());
  ASSERT_EQ(compact->status, 200) << compact->body;
  EXPECT_EQ(compact->body, "compacted epoch=3\n");
  auto after_compact = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(after_compact.ok());
  EXPECT_EQ(after_compact->body, baseline->body);

  // /varz exposes the live corpus counters; /healthz tracks the epoch.
  auto varz = HttpCall(port(), "GET", "/varz");
  ASSERT_TRUE(varz.ok());
  EXPECT_NE(varz->body.find("live_epoch 3\n"), std::string::npos);
  EXPECT_NE(varz->body.find("live_entities 30\n"), std::string::npos);
  EXPECT_NE(varz->body.find("live_delta_entities 0\n"), std::string::npos);
  EXPECT_NE(varz->body.find("live_tombstones 0\n"), std::string::npos);
  EXPECT_NE(varz->body.find("live_upserts 1\n"), std::string::npos);
  EXPECT_NE(varz->body.find("live_removes 1\n"), std::string::npos);
  EXPECT_NE(varz->body.find("live_compactions 1\n"), std::string::npos);
  EXPECT_NE(varz->body.find("live_delta_store_bytes "), std::string::npos);
  auto health2 = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health2.ok());
  EXPECT_EQ(health2->body, "ok generation=1 stale=0 epoch=3\n");
}

TEST_F(ServeDaemonTest, LiveReloadHotSwapsTheRuleOverTheMutatedCorpus) {
  ServeOptions options;
  options.csv.id_column = "id";
  StartLiveDaemon(options);
  auto upsert = HttpCall(port(), "POST", "/upsert",
                         "id,name,city\nlive1,record number 1,berlin\n");
  ASSERT_TRUE(upsert.ok());
  ASSERT_EQ(upsert->status, 200);

  // Swap to the stricter name+city rule; the delta entry re-evaluates.
  WriteArtifactFile(artifact_path_, NameCityRule(), "serve-live-v2");
  auto reload = HttpCall(port(), "POST", "/reload", artifact_path_);
  ASSERT_TRUE(reload.ok());
  ASSERT_EQ(reload->status, 200) << reload->body;
  EXPECT_EQ(reload->body, "reloaded generation=2\n");

  const std::string query_csv = "id,name,city\nq,record number 1,berlin\n";
  auto response = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(response.ok());
  ASSERT_EQ(response->status, 200);
  EXPECT_NE(response->body.find("live1"), std::string::npos);

  // A corrupt push degrades to stale; the mutated corpus keeps serving
  // the old rule's exact answers.
  ASSERT_TRUE(
      WriteStringToFile(artifact_path_, "genlink-artifact v99\nnope\n").ok());
  auto bad_reload = HttpCall(port(), "POST", "/reload", artifact_path_);
  ASSERT_TRUE(bad_reload.ok());
  EXPECT_EQ(bad_reload->status, 500);
  auto health = HttpCall(port(), "GET", "/healthz");
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->body.find("generation=2 stale=1"), std::string::npos);
  auto again = HttpCall(port(), "POST", "/match", query_csv);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->body, response->body);
}

TEST_F(ServeDaemonTest, GracefulDrainFinishesInFlightRequests) {
  StartDaemon({});
  // ~80ms of injected stall so the request is reliably in flight when
  // the shutdown lands, then completes well inside the drain budget.
  Failpoints::Instance().Arm("serve.match_block", {.count = 80});
  std::atomic<int> status{0};
  std::thread client([&] {
    auto response =
        HttpCall(port(), "POST", "/match", "name\nrecord number 0\n");
    status.store(response.ok() ? response->status : -1);
  });
  // Wait until the daemon has actually dispatched the request.
  while (daemon_->counters().requests.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  daemon_->RequestShutdown();
  const bool clean = daemon_->WaitForDrain();
  client.join();
  EXPECT_TRUE(clean);
  EXPECT_EQ(daemon_->counters().drain_aborts.load(), 0u);
  EXPECT_EQ(status.load(), 200);
}

TEST_F(ServeDaemonTest, DrainAbortsARequestThatOverstaysTheBudget) {
  ServeOptions options;
  options.drain_deadline = std::chrono::milliseconds(150);
  options.read_timeout = std::chrono::milliseconds(10000);
  StartDaemon(options);
  // A started request whose body never arrives: the worker is mid-read
  // when the drain begins, and the peer outwaits the drain budget.
  const int fd = RawConnect(port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendRaw(fd, "POST /match HTTP/1.1\r\nContent-Length: 8\r\n\r\nab"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  daemon_->RequestShutdown();
  EXPECT_FALSE(daemon_->WaitForDrain());
  EXPECT_GE(daemon_->counters().drain_aborts.load(), 1u);
  ::close(fd);
}

TEST_F(ServeDaemonTest, ShutdownFdTriggersTheSameDrain) {
  StartDaemon({});
  // What a SIGTERM handler does: one byte to the self-pipe.
  const char byte = 1;
  ASSERT_EQ(::write(daemon_->shutdown_fd(), &byte, 1), 1);
  EXPECT_TRUE(daemon_->WaitForDrain());
  EXPECT_NE(daemon_->RenderVarz().find("serve_draining 1\n"),
            std::string::npos);
}

}  // namespace
}  // namespace genlink
