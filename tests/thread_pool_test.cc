// Edge cases of the worker pool (common/thread_pool.h): empty ranges,
// the deterministic exception contract (every index runs, the smallest
// failing index's exception is rethrown, identical for any thread
// count), oversubscribed ParallelForEach, and pool reuse after a batch
// that threw. The happy paths are exercised constantly by the engine
// and island tests; these are the paths only error handling reaches.

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace genlink {
namespace {

TEST(ThreadPoolTest, ZeroTasksReturnImmediately) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(0, [&](size_t) { calls.fetch_add(1); });
  pool.ParallelForEach(0, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0u);
}

TEST(ThreadPoolTest, SingleTaskRunsInline) {
  ThreadPool pool(4);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  pool.ParallelForEach(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 2u);
}

TEST(ThreadPoolTest, ExceptionFromTaskPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(100,
                       [&](size_t i) {
                         if (i == 37) throw std::runtime_error("task 37");
                       }),
      std::runtime_error);
}

// The contract that makes error paths as reproducible as success
// paths: whichever worker fails first in wall time, the exception the
// caller sees is the one thrown by the SMALLEST failing index, and
// every non-throwing index still runs.
TEST(ThreadPoolTest, SmallestFailingIndexWinsForAnyThreadCount) {
  for (size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    std::atomic<size_t> ran{0};
    std::string caught;
    try {
      pool.ParallelFor(64, [&](size_t i) {
        ran.fetch_add(1);
        // Three failures, the larger indices likely to be *reached*
        // first under chunked scheduling.
        if (i == 11 || i == 40 || i == 63) {
          throw std::runtime_error("index " + std::to_string(i));
        }
      });
      FAIL() << "expected a throw with " << threads << " thread(s)";
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "index 11") << threads << " thread(s)";
    EXPECT_EQ(ran.load(), 64u) << "every index must run despite failures";
  }
}

TEST(ThreadPoolTest, ParallelForEachSmallestFailingIndexWins) {
  ThreadPool pool(4);
  std::string caught;
  try {
    pool.ParallelForEach(16, [&](size_t i) {
      if (i % 5 == 2) {  // fails at 2, 7, 12
        throw std::invalid_argument("each " + std::to_string(i));
      }
    });
    FAIL() << "expected a throw";
  } catch (const std::invalid_argument& e) {
    caught = e.what();
  }
  EXPECT_EQ(caught, "each 2");
}

TEST(ThreadPoolTest, NonExceptionThrowTypesPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](size_t i) {
                                  if (i == 3) throw 42;  // not std::exception
                                }),
               int);
}

TEST(ThreadPoolTest, ParallelForEachManyMoreTasksThanThreads) {
  ThreadPool pool(2);
  constexpr size_t kCount = 500;  // 250x oversubscribed
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelForEach(kCount, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// A batch that threw must not poison the pool: no worker died, no
// task queue residue, and the next batches (throwing and clean) behave
// exactly like the first.
TEST(ThreadPoolTest, PoolIsReusableAfterThrowingBatch) {
  ThreadPool pool(4);
  for (int round = 0; round < 3; ++round) {
    std::atomic<size_t> ran{0};
    std::string caught;
    try {
      pool.ParallelFor(32, [&](size_t i) {
        ran.fetch_add(1);
        if (i == 5) throw std::runtime_error("round " + std::to_string(round));
      });
    } catch (const std::runtime_error& e) {
      caught = e.what();
    }
    EXPECT_EQ(caught, "round " + std::to_string(round));
    EXPECT_EQ(ran.load(), 32u);
  }
  // Clean batch after three throwing ones: full coverage, no throw.
  std::atomic<size_t> clean{0};
  pool.ParallelForEach(64, [&](size_t) { clean.fetch_add(1); });
  EXPECT_EQ(clean.load(), 64u);
}

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(3);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t i) { hits[i].fetch_add(1); });
  std::set<size_t> missed, duplicated;
  for (size_t i = 0; i < kCount; ++i) {
    if (hits[i].load() == 0) missed.insert(i);
    if (hits[i].load() > 1) duplicated.insert(i);
  }
  EXPECT_TRUE(missed.empty());
  EXPECT_TRUE(duplicated.empty());
}

TEST(ThreadPoolTest, ZeroRequestedThreadsFallsBackToHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
  std::atomic<size_t> calls{0};
  pool.ParallelFor(10, [&](size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 10u);
}

}  // namespace
}  // namespace genlink
