// Unit tests for the IO module: CSV, N-Triples and link files.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "io/csv.h"
#include "io/link_io.h"
#include "io/ntriples.h"

namespace genlink {
namespace {

// -------------------------------------------------------------------- CSV

TEST(CsvTest, BasicRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"1", "2", "3"}));
}

TEST(CsvTest, QuotedFieldsWithSeparatorsAndNewlines) {
  auto rows = ParseCsv("\"a,b\",\"line1\nline2\",\"he said \"\"hi\"\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0], "a,b");
  EXPECT_EQ((*rows)[0][1], "line1\nline2");
  EXPECT_EQ((*rows)[0][2], "he said \"hi\"");
}

TEST(CsvTest, CrLfAndMissingFinalNewline) {
  auto rows = ParseCsv("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, UnterminatedQuoteFails) {
  auto rows = ParseCsv("\"oops");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kParseError);
}

TEST(CsvTest, WriteReadRoundTrip) {
  std::vector<std::vector<std::string>> rows{
      {"plain", "with,comma", "with\"quote"},
      {"line\nbreak", "", "end"},
  };
  auto parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, rows);
}

TEST(CsvTest, ReadDataset) {
  CsvDatasetOptions options;
  options.id_column = "id";
  options.value_separator = '|';
  auto ds = ReadCsvDataset("id,name,tags\nr1,Alpha,x|y\nr2,Beta,\n", "test",
                           options);
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  const Entity* r1 = ds->FindEntity("r1");
  ASSERT_NE(r1, nullptr);
  auto name = ds->schema().FindProperty("name");
  auto tags = ds->schema().FindProperty("tags");
  ASSERT_TRUE(name && tags);
  EXPECT_EQ(r1->Values(*name), (ValueSet{"Alpha"}));
  EXPECT_EQ(r1->Values(*tags), (ValueSet{"x", "y"}));
  EXPECT_TRUE(ds->FindEntity("r2")->Values(*tags).empty());
}

TEST(CsvTest, ReadDatasetMissingIdColumnFails) {
  CsvDatasetOptions options;
  options.id_column = "id";
  auto ds = ReadCsvDataset("name\nAlpha\n", "test", options);
  EXPECT_FALSE(ds.ok());
  EXPECT_EQ(ds.status().code(), StatusCode::kNotFound);
}

// -------------------------------------------------------------- N-Triples

// The incremental reader behind `genlink query` must decode records
// exactly like the batch loader (same header mapping, same cell
// semantics), including quoted fields spanning lines.
TEST(CsvEntityStreamTest, MatchesBatchLoadRecordForRecord) {
  const std::string csv =
      "id,name,notes\n"
      "r1,Alpha,\"multi\nline, note\"\n"
      "r2,Beta,\n"
      "r3,\"Quoted \"\"Name\"\"\",plain\n";
  CsvDatasetOptions options;
  options.id_column = "id";
  auto batch = ReadCsvDataset(csv, "batch", options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();

  std::istringstream in(csv);
  CsvEntityStream stream(in, options);
  ASSERT_TRUE(stream.status().ok()) << stream.status().ToString();
  ASSERT_EQ(stream.schema().property_names(),
            batch->schema().property_names());

  Entity entity;
  size_t index = 0;
  while (stream.Next(&entity)) {
    ASSERT_LT(index, batch->size());
    const Entity& expected = batch->entity(index);
    EXPECT_EQ(entity.id(), expected.id());
    for (PropertyId p = 0; p < stream.schema().NumProperties(); ++p) {
      EXPECT_EQ(entity.Values(p), expected.Values(p)) << entity.id();
    }
    ++index;
  }
  EXPECT_TRUE(stream.status().ok());
  EXPECT_EQ(index, batch->size());
}

// A literal '"' inside an unquoted field (`5" nail`) is a literal
// character to ParseCsv, not an open quote — the stream must not glue
// the rest of the input into one record and drop the later queries.
TEST(CsvEntityStreamTest, LiteralQuoteInUnquotedFieldDoesNotEatLaterRows) {
  const std::string csv =
      "id,name\n"
      "q1,5\" nail\n"
      "q2,hammer\n"
      "q3,saw\n";
  CsvDatasetOptions options;
  options.id_column = "id";
  auto batch = ReadCsvDataset(csv, "batch", options);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), 3u);

  std::istringstream in(csv);
  CsvEntityStream stream(in, options);
  ASSERT_TRUE(stream.status().ok());
  Entity entity;
  std::vector<std::string> ids;
  std::vector<std::string> names;
  while (stream.Next(&entity)) {
    ids.push_back(entity.id());
    names.push_back(entity.Values(0).empty() ? "" : entity.Values(0)[0]);
  }
  EXPECT_TRUE(stream.status().ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"q1", "q2", "q3"}));
  EXPECT_EQ(names[0], "5\" nail");
}

// A bare '\r' is a row terminator to ParseCsv, so one input line can
// hold two rows — both must be served, matching the batch loader.
TEST(CsvEntityStreamTest, BareCarriageReturnYieldsBothRows) {
  const std::string csv = "id,name\nq1,alpha\rq2,beta\n";
  CsvDatasetOptions options;
  options.id_column = "id";
  auto batch = ReadCsvDataset(csv, "batch", options);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), 2u);

  std::istringstream in(csv);
  CsvEntityStream stream(in, options);
  ASSERT_TRUE(stream.status().ok());
  Entity entity;
  std::vector<std::string> ids;
  while (stream.Next(&entity)) ids.push_back(entity.id());
  EXPECT_TRUE(stream.status().ok());
  EXPECT_EQ(ids, (std::vector<std::string>{"q1", "q2"}));
}

TEST(CsvEntityStreamTest, SkipsBlankLinesAndAllowsDuplicateIds) {
  std::istringstream in("id,name\n\nq1,Alpha\n\n\nq1,Alpha again\n");
  CsvDatasetOptions options;
  options.id_column = "id";
  CsvEntityStream stream(in, options);
  ASSERT_TRUE(stream.status().ok());
  Entity entity;
  std::vector<std::string> ids;
  while (stream.Next(&entity)) ids.push_back(entity.id());
  EXPECT_TRUE(stream.status().ok());
  // A query stream is not a dataset: the repeated id is served twice.
  EXPECT_EQ(ids, (std::vector<std::string>{"q1", "q1"}));
}

TEST(CsvEntityStreamTest, MissingHeaderOrIdColumnFails) {
  CsvDatasetOptions options;
  options.id_column = "id";
  std::istringstream empty("");
  EXPECT_FALSE(CsvEntityStream(empty, options).status().ok());
  std::istringstream no_id("name\nAlpha\n");
  EXPECT_FALSE(CsvEntityStream(no_id, options).status().ok());
}

TEST(NTriplesTest, ParsesLiteralTriple) {
  auto t = ParseNTriplesLine(
      "<http://ex.org/e1> <http://ex.org/name> \"Alice \\\"A\\\"\" .");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->subject, "http://ex.org/e1");
  EXPECT_EQ(t->predicate, "http://ex.org/name");
  EXPECT_EQ(t->object, "Alice \"A\"");
  EXPECT_FALSE(t->object_is_iri);
}

TEST(NTriplesTest, ParsesIriTripleAndLangTag) {
  auto t1 = ParseNTriplesLine("<http://a> <http://p> <http://b> .");
  ASSERT_TRUE(t1.ok());
  EXPECT_TRUE(t1->object_is_iri);

  auto t2 = ParseNTriplesLine("<http://a> <http://p> \"hi\"@en .");
  ASSERT_TRUE(t2.ok());
  EXPECT_EQ(t2->object, "hi");

  auto t3 = ParseNTriplesLine(
      "<http://a> <http://p> \"5\"^^<http://www.w3.org/2001/XMLSchema#int> .");
  ASSERT_TRUE(t3.ok());
  EXPECT_EQ(t3->object, "5");
}

TEST(NTriplesTest, SkipsCommentsAndBlanks) {
  EXPECT_EQ(ParseNTriplesLine("# comment").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(ParseNTriplesLine("   ").status().code(), StatusCode::kNotFound);
}

TEST(NTriplesTest, RejectsMalformed) {
  EXPECT_EQ(ParseNTriplesLine("not a triple").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseNTriplesLine("<a> <b>").status().code(), StatusCode::kParseError);
  EXPECT_EQ(ParseNTriplesLine("<a> <b> \"unterminated .").status().code(),
            StatusCode::kParseError);
}

TEST(NTriplesTest, IriLocalNames) {
  EXPECT_EQ(IriLocalName("http://xmlns.com/foaf/0.1/name"), "name");
  EXPECT_EQ(IriLocalName("http://ex.org/onto#label"), "label");
  EXPECT_EQ(IriLocalName("plain"), "plain");
}

TEST(NTriplesTest, ReadDatasetGroupsBySubject) {
  const char* nt =
      "<http://ex.org/e1> <http://ex.org/name> \"Alice\" .\n"
      "# a comment\n"
      "<http://ex.org/e1> <http://ex.org/age> \"30\" .\n"
      "<http://ex.org/e2> <http://ex.org/name> \"Bob\" .\n";
  auto ds = ReadNTriplesDataset(nt, "people");
  ASSERT_TRUE(ds.ok());
  EXPECT_EQ(ds->size(), 2u);
  auto name = ds->schema().FindProperty("name");
  ASSERT_TRUE(name.has_value());
  EXPECT_EQ(ds->FindEntity("http://ex.org/e1")->Values(*name), (ValueSet{"Alice"}));
}

// ------------------------------------------------------------------ links

TEST(LinkIoTest, CsvRoundTrip) {
  ReferenceLinkSet links;
  links.AddPositive("a1", "b1");
  links.AddNegative("a2", "b2");
  auto parsed = ReadLinksCsv(WriteLinksCsv(links));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->positives().size(), 1u);
  ASSERT_EQ(parsed->negatives().size(), 1u);
  EXPECT_EQ(parsed->positives()[0].id_a, "a1");
  EXPECT_EQ(parsed->negatives()[0].id_b, "b2");
}

TEST(LinkIoTest, LinksWithoutLabelArePositive) {
  auto parsed = ReadLinksCsv("id_a,id_b\nx,y\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->positives().size(), 1u);
}

TEST(LinkIoTest, SameAsRoundTrip) {
  ReferenceLinkSet links;
  links.AddPositive("http://a/1", "http://b/1");
  links.AddPositive("http://a/2", "http://b/2");
  auto parsed = ReadSameAsLinks(WriteSameAsLinks(links));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->positives().size(), 2u);
  EXPECT_EQ(parsed->positives()[1].id_b, "http://b/2");
}

TEST(FileIoTest, WriteAndReadBack) {
  std::string path = ::testing::TempDir() + "/genlink_io_test.txt";
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld").ok());
  auto content = ReadFileToString(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(*content, "hello\nworld");
}

TEST(FileIoTest, MissingFileFails) {
  auto content = ReadFileToString("/nonexistent/genlink/file");
  EXPECT_FALSE(content.ok());
  EXPECT_EQ(content.status().code(), StatusCode::kIoError);
}

}  // namespace
}  // namespace genlink
