// Unit tests for the linkage-rule operator tree: evaluation semantics of
// Definitions 5-8, the Figure 2 example, tree utilities and validation.

#include <gtest/gtest.h>

#include "model/dataset.h"
#include "rule/builder.h"
#include "rule/linkage_rule.h"

namespace genlink {
namespace {

// Builds the two-dataset fixture used throughout: cities with labels and
// coordinates, represented in two different schemata.
class RuleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_.set_name("source");
    PropertyId a_label = a_.schema().AddProperty("label");
    PropertyId a_point = a_.schema().AddProperty("point");

    b_.set_name("target");
    PropertyId b_label = b_.schema().AddProperty("label");
    PropertyId b_coord = b_.schema().AddProperty("coord");

    Entity berlin_a("a:berlin");
    berlin_a.AddValue(a_label, "Berlin");
    berlin_a.AddValue(a_point, "52.5200 13.4050");
    ASSERT_TRUE(a_.AddEntity(std::move(berlin_a)).ok());

    Entity berlin_b("b:berlin");
    berlin_b.AddValue(b_label, "berlin");  // lower case on this side
    berlin_b.AddValue(b_coord, "52.5201 13.4051");
    ASSERT_TRUE(b_.AddEntity(std::move(berlin_b)).ok());

    Entity paris_b("b:paris");
    paris_b.AddValue(b_label, "paris");
    paris_b.AddValue(b_coord, "48.8566 2.3522");
    ASSERT_TRUE(b_.AddEntity(std::move(paris_b)).ok());
  }

  // The Figure 2 rule: min( levenshtein(lowerCase(label), label) θ=1,
  //                         geographic(point, coord) θ=500m ).
  LinkageRule Figure2Rule() {
    auto rule = RuleBuilder()
                    .Aggregate("min")
                    .Compare("levenshtein", 1.0, Prop("label").Lower(),
                             Prop("label"))
                    .Compare("geographic", 500.0, Prop("point"), Prop("coord"))
                    .End()
                    .Build();
    EXPECT_TRUE(rule.ok()) << rule.status().ToString();
    return std::move(rule).value();
  }

  const Entity& Find(const Dataset& ds, const std::string& id) {
    const Entity* e = ds.FindEntity(id);
    EXPECT_NE(e, nullptr);
    return *e;
  }

  Dataset a_, b_;
};

TEST_F(RuleTest, Figure2ExampleMatchesSameCity) {
  LinkageRule rule = Figure2Rule();
  double score = rule.Evaluate(Find(a_, "a:berlin"), Find(b_, "b:berlin"),
                               a_.schema(), b_.schema());
  // Labels are identical after lowercasing (d=0 -> 1.0); the coordinates
  // are ~13m apart (score ~ 1 - 13/500); min is the geo score.
  EXPECT_GT(score, 0.9);
  EXPECT_LT(score, 1.0);
  EXPECT_TRUE(rule.Matches(Find(a_, "a:berlin"), Find(b_, "b:berlin"),
                           a_.schema(), b_.schema()));
}

TEST_F(RuleTest, Figure2ExampleRejectsDifferentCity) {
  LinkageRule rule = Figure2Rule();
  double score = rule.Evaluate(Find(a_, "a:berlin"), Find(b_, "b:paris"),
                               a_.schema(), b_.schema());
  EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST_F(RuleTest, CaseSensitiveComparisonFailsWithoutTransform) {
  // Without lowerCase, "Berlin" vs "berlin" has levenshtein distance 1:
  // score = 1 - 1/1 = 0 under θ=1.
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 1.0, Prop("label"), Prop("label"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  double score = rule->Evaluate(Find(a_, "a:berlin"), Find(b_, "b:berlin"),
                                a_.schema(), b_.schema());
  EXPECT_DOUBLE_EQ(score, 0.0);
}

TEST_F(RuleTest, MissingPropertyYieldsZero) {
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 2.0, Prop("no_such_prop"), Prop("label"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  EXPECT_DOUBLE_EQ(rule->Evaluate(Find(a_, "a:berlin"), Find(b_, "b:berlin"),
                                  a_.schema(), b_.schema()),
                   0.0);
}

TEST_F(RuleTest, EmptyRuleEvaluatesToZero) {
  LinkageRule empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_DOUBLE_EQ(empty.Evaluate(Find(a_, "a:berlin"), Find(b_, "b:berlin"),
                                  a_.schema(), b_.schema()),
                   0.0);
  EXPECT_EQ(empty.OperatorCount(), 0u);
}

TEST_F(RuleTest, WeightedMeanAggregation) {
  // wmean with weights 3 and 1: (3*s1 + 1*s2) / 4.
  auto rule = RuleBuilder()
                  .Aggregate("wmean")
                  .Compare("levenshtein", 1.0, Prop("label").Lower(), Prop("label"),
                           /*weight=*/3.0)
                  .Compare("levenshtein", 1.0, Prop("label"), Prop("label"),
                           /*weight=*/1.0)
                  .End()
                  .Build();
  ASSERT_TRUE(rule.ok());
  // First comparison scores 1.0 (lowercased match), second scores 0.0
  // (case-sensitive distance 1 with θ=1): wmean = 3/4.
  EXPECT_DOUBLE_EQ(rule->Evaluate(Find(a_, "a:berlin"), Find(b_, "b:berlin"),
                                  a_.schema(), b_.schema()),
                   0.75);
}

TEST_F(RuleTest, MaxAggregationIsDisjunction) {
  auto rule = RuleBuilder()
                  .Aggregate("max")
                  .Compare("levenshtein", 1.0, Prop("label"), Prop("label"))
                  .Compare("geographic", 500.0, Prop("point"), Prop("coord"))
                  .End()
                  .Build();
  ASSERT_TRUE(rule.ok());
  // Label comparison fails (case), geo succeeds: max > 0.9.
  EXPECT_GT(rule->Evaluate(Find(a_, "a:berlin"), Find(b_, "b:berlin"),
                           a_.schema(), b_.schema()),
            0.9);
}

TEST_F(RuleTest, NestedAggregations) {
  auto rule = RuleBuilder()
                  .Aggregate("max")
                  .Aggregate("min")
                  .Compare("levenshtein", 1.0, Prop("label").Lower(), Prop("label"))
                  .Compare("geographic", 500.0, Prop("point"), Prop("coord"))
                  .End()
                  .Compare("levenshtein", 1.0, Prop("label"), Prop("label"))
                  .End()
                  .Build();
  ASSERT_TRUE(rule.ok());
  EXPECT_EQ(CollectAggregations(*rule).size(), 2u);
  EXPECT_GT(rule->Evaluate(Find(a_, "a:berlin"), Find(b_, "b:berlin"),
                           a_.schema(), b_.schema()),
            0.9);
}

TEST_F(RuleTest, OperatorCountCountsAllNodes) {
  LinkageRule rule = Figure2Rule();
  // 1 aggregation + 2 comparisons + 1 transform + 4 properties = 8.
  EXPECT_EQ(rule.OperatorCount(), 8u);
}

TEST_F(RuleTest, CloneIsDeepAndEqualHash) {
  LinkageRule rule = Figure2Rule();
  LinkageRule clone = rule.Clone();
  EXPECT_EQ(rule.StructuralHash(), clone.StructuralHash());
  // Mutating the clone must not affect the original.
  CollectComparisons(clone)[0]->set_threshold(99.0);
  EXPECT_NE(rule.StructuralHash(), clone.StructuralHash());
  EXPECT_DOUBLE_EQ(CollectComparisons(rule)[0]->threshold(), 1.0);
}

TEST_F(RuleTest, StructuralHashDistinguishesFunctionAndShape) {
  auto r1 = RuleBuilder()
                .Compare("levenshtein", 1.0, Prop("label"), Prop("label"))
                .Build();
  auto r2 = RuleBuilder()
                .Compare("jaccard", 1.0, Prop("label"), Prop("label"))
                .Build();
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_NE(r1->StructuralHash(), r2->StructuralHash());
}

TEST_F(RuleTest, CollectorsFindAllNodes) {
  LinkageRule rule = Figure2Rule();
  EXPECT_EQ(CollectComparisons(rule).size(), 2u);
  EXPECT_EQ(CollectAggregations(rule).size(), 1u);
  EXPECT_EQ(CollectTransforms(rule).size(), 1u);
  EXPECT_EQ(CollectSimilaritySlots(rule).size(), 3u);  // root + 2 comparisons
  EXPECT_EQ(CollectValueSlots(rule).size(), 5u);       // 4 props + 1 transform
  EXPECT_EQ(CollectTransformSlots(rule).size(), 1u);
}

TEST_F(RuleTest, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(Figure2Rule().Validate().ok());
}

TEST_F(RuleTest, ValidateRejectsEmptyAggregation) {
  auto agg = std::make_unique<AggregationOperator>(
      AggregationRegistry::Default().Find("min"),
      std::vector<std::unique_ptr<SimilarityOperator>>{});
  LinkageRule rule(std::move(agg));
  EXPECT_FALSE(rule.Validate().ok());
}

TEST_F(RuleTest, ValidateRejectsNegativeThresholdAndBadWeight) {
  auto rule = RuleBuilder()
                  .Compare("levenshtein", 1.0, Prop("label"), Prop("label"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  CollectComparisons(*rule)[0]->set_threshold(-1.0);
  EXPECT_FALSE(rule->Validate().ok());
  CollectComparisons(*rule)[0]->set_threshold(1.0);
  CollectComparisons(*rule)[0]->set_weight(0.0);
  EXPECT_FALSE(rule->Validate().ok());
}

TEST_F(RuleTest, BuilderReportsUnknownNames) {
  auto bad_measure = RuleBuilder()
                         .Compare("nope", 1.0, Prop("x"), Prop("y"))
                         .Build();
  EXPECT_FALSE(bad_measure.ok());
  EXPECT_EQ(bad_measure.status().code(), StatusCode::kNotFound);

  auto bad_transform =
      RuleBuilder()
          .Compare("levenshtein", 1.0, Prop("x").Transform("nope"), Prop("y"))
          .Build();
  EXPECT_FALSE(bad_transform.ok());
}

TEST_F(RuleTest, BuilderRejectsUnclosedAggregation) {
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("levenshtein", 1.0, Prop("x"), Prop("y"))
                  .Build();  // missing End()
  EXPECT_FALSE(rule.ok());
  EXPECT_EQ(rule.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(RuleTest, ConcatenateJoinsTwoProperties) {
  // Match "first last" against a concatenation of two properties.
  Dataset people("people");
  PropertyId first = people.schema().AddProperty("firstName");
  PropertyId last = people.schema().AddProperty("lastName");
  Entity p("p1");
  p.AddValue(first, "john");
  p.AddValue(last, "smith");
  ASSERT_TRUE(people.AddEntity(std::move(p)).ok());

  Dataset persons("persons");
  PropertyId name = persons.schema().AddProperty("name");
  Entity q("q1");
  q.AddValue(name, "john smith");
  ASSERT_TRUE(persons.AddEntity(std::move(q)).ok());

  auto rule = RuleBuilder()
                  .Compare("levenshtein", 1.0,
                           Prop("firstName").Concat(Prop("lastName")),
                           Prop("name"))
                  .Build();
  ASSERT_TRUE(rule.ok());
  EXPECT_DOUBLE_EQ(rule->Evaluate(*people.FindEntity("p1"), *persons.FindEntity("q1"),
                                  people.schema(), persons.schema()),
                   1.0);
}

}  // namespace
}  // namespace genlink
