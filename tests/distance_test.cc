// Unit and property tests for the distance measure library.

#include <cmath>

#include <gtest/gtest.h>

#include "common/random.h"
#include "datasets/noise.h"
#include "distance/numeric_distances.h"
#include "distance/registry.h"
#include "distance/string_distances.h"
#include "distance/token_distances.h"

namespace genlink {
namespace {

// ------------------------------------------------------------ Levenshtein

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(LevenshteinEditDistance("kitten", "sitting"), 3);
  EXPECT_EQ(LevenshteinEditDistance("flaw", "lawn"), 2);
  EXPECT_EQ(LevenshteinEditDistance("", "abc"), 3);
  EXPECT_EQ(LevenshteinEditDistance("abc", ""), 3);
  EXPECT_EQ(LevenshteinEditDistance("same", "same"), 0);
}

TEST(LevenshteinTest, SetLiftTakesMinimum) {
  LevenshteinDistance lev;
  EXPECT_DOUBLE_EQ(lev.Distance({"aaa", "abc"}, {"abd"}), 1.0);
  EXPECT_TRUE(std::isinf(lev.Distance({}, {"x"})));
  EXPECT_TRUE(std::isinf(lev.Distance({"x"}, {})));
}

// -------------------------------------------------------------- Jaro (+W)

TEST(JaroTest, KnownValues) {
  EXPECT_NEAR(JaroSimilarity("martha", "marhta"), 0.9444, 1e-3);
  EXPECT_NEAR(JaroSimilarity("dixon", "dicksonx"), 0.7667, 1e-3);
  EXPECT_DOUBLE_EQ(JaroSimilarity("same", "same"), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("abc", "xyz"), 0.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("", ""), 1.0);
  EXPECT_DOUBLE_EQ(JaroSimilarity("a", ""), 0.0);
}

TEST(JaroWinklerTest, PrefixBoost) {
  JaroDistance jaro;
  JaroWinklerDistance jw;
  // Shared prefix "mar" means Jaro-Winkler is at least as similar.
  EXPECT_LE(jw.ValueDistance("martha", "marhta"),
            jaro.ValueDistance("martha", "marhta"));
  EXPECT_DOUBLE_EQ(jw.ValueDistance("x", "x"), 0.0);
}

// ----------------------------------------------------------------- tokens

TEST(JaccardTest, KnownValues) {
  JaccardDistance jaccard;
  EXPECT_DOUBLE_EQ(jaccard.Distance({"a", "b"}, {"b", "c"}), 1.0 - 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(jaccard.Distance({"a"}, {"a"}), 0.0);
  EXPECT_DOUBLE_EQ(jaccard.Distance({"a"}, {"b"}), 1.0);
  // Duplicates collapse to set semantics.
  EXPECT_DOUBLE_EQ(jaccard.Distance({"a", "a"}, {"a"}), 0.0);
}

TEST(DiceTest, KnownValues) {
  DiceDistance dice;
  EXPECT_DOUBLE_EQ(dice.Distance({"a", "b"}, {"b", "c"}), 0.5);
  EXPECT_DOUBLE_EQ(dice.Distance({"a"}, {"a"}), 0.0);
}

TEST(CosineTest, KnownValues) {
  CosineDistance cosine;
  EXPECT_NEAR(cosine.Distance({"a"}, {"a"}), 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(cosine.Distance({"a"}, {"b"}), 1.0);
  // Orthogonal halves: cos = 0.5.
  EXPECT_NEAR(cosine.Distance({"a", "b"}, {"b", "c"}), 0.5, 1e-12);
}

// ---------------------------------------------------------------- numeric

TEST(NumericTest, AbsoluteDifference) {
  NumericDistance num;
  EXPECT_DOUBLE_EQ(num.ValueDistance("3", "5"), 2.0);
  EXPECT_DOUBLE_EQ(num.ValueDistance("-1.5", "1.5"), 3.0);
  EXPECT_TRUE(std::isinf(num.ValueDistance("abc", "1")));
}

TEST(GeoTest, ParsesFormats) {
  auto p1 = ParseGeoPoint("52.52 13.405");
  ASSERT_TRUE(p1.has_value());
  EXPECT_DOUBLE_EQ(p1->lat, 52.52);
  EXPECT_DOUBLE_EQ(p1->lon, 13.405);

  auto p2 = ParseGeoPoint("52.52,13.405");
  ASSERT_TRUE(p2.has_value());
  EXPECT_DOUBLE_EQ(p2->lon, 13.405);

  auto p3 = ParseGeoPoint("POINT(13.405 52.52)");  // WKT is lon lat
  ASSERT_TRUE(p3.has_value());
  EXPECT_DOUBLE_EQ(p3->lat, 52.52);
  EXPECT_DOUBLE_EQ(p3->lon, 13.405);

  EXPECT_FALSE(ParseGeoPoint("not a point").has_value());
  EXPECT_FALSE(ParseGeoPoint("999 999").has_value());  // out of range
}

TEST(GeoTest, HaversineBerlinParis) {
  // Berlin -> Paris is ~878 km.
  GeoPoint berlin{52.52, 13.405};
  GeoPoint paris{48.8566, 2.3522};
  EXPECT_NEAR(HaversineMeters(berlin, paris), 878000, 10000);
  EXPECT_DOUBLE_EQ(HaversineMeters(berlin, berlin), 0.0);
}

TEST(DateTest, DaysFromCivil) {
  EXPECT_EQ(DaysFromCivil(1970, 1, 1), 0);
  EXPECT_EQ(DaysFromCivil(1970, 1, 2), 1);
  EXPECT_EQ(DaysFromCivil(1969, 12, 31), -1);
  EXPECT_EQ(DaysFromCivil(2000, 3, 1), 11017);
}

TEST(DateTest, ParseAndDistance) {
  DateDistance date;
  EXPECT_DOUBLE_EQ(date.ValueDistance("2000-01-01", "2000-01-11"), 10.0);
  EXPECT_DOUBLE_EQ(date.ValueDistance("1999", "2000"), 365.0);
  EXPECT_DOUBLE_EQ(date.ValueDistance("2000-01-01T12:00:00", "2000-01-02"), 1.0);
  EXPECT_TRUE(std::isinf(date.ValueDistance("not-a-date", "2000-01-01")));
  EXPECT_TRUE(std::isinf(date.ValueDistance("2000-13-01", "2000-01-01")));
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, AllTable2MeasuresPresent) {
  const auto& reg = DistanceRegistry::Default();
  for (const char* name :
       {"levenshtein", "jaccard", "numeric", "geographic", "date"}) {
    EXPECT_NE(reg.Find(name), nullptr) << name;
  }
  EXPECT_EQ(reg.Find("nope"), nullptr);
  EXPECT_GE(reg.measures().size(), 10u);
}

// -------------------------------------------------------- ThresholdedScore

TEST(ThresholdedScoreTest, Definition7Semantics) {
  EXPECT_DOUBLE_EQ(ThresholdedScore(0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ThresholdedScore(0.5, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(ThresholdedScore(1.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(ThresholdedScore(1.5, 1.0), 0.0);
  // Degenerate zero threshold: exact match only.
  EXPECT_DOUBLE_EQ(ThresholdedScore(0.0, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(ThresholdedScore(0.1, 0.0), 0.0);
  // Infinite distance is always 0.
  EXPECT_DOUBLE_EQ(ThresholdedScore(kInfiniteDistance, 5.0), 0.0);
}

// ------------------------------------------------- property tests (TEST_P)

class MeasurePropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(MeasurePropertyTest, SymmetricNonNegativeAndZeroOnSelf) {
  const DistanceMeasure* measure = DistanceRegistry::Default().Find(GetParam());
  ASSERT_NE(measure, nullptr);
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    // Random word-ish values; numeric-looking values for numeric/date.
    std::string a = RandomWord(1 + rng.PickIndex(10), rng);
    std::string b = RandomWord(1 + rng.PickIndex(10), rng);
    if (std::string_view(GetParam()) == "numeric") {
      a = std::to_string(rng.UniformInt(0, 1000));
      b = std::to_string(rng.UniformInt(0, 1000));
    } else if (std::string_view(GetParam()) == "date") {
      a = std::to_string(1900 + rng.PickIndex(200));
      b = std::to_string(1900 + rng.PickIndex(200));
    } else if (std::string_view(GetParam()) == "geographic") {
      a = std::to_string(rng.UniformInt(-89, 89)) + " " +
          std::to_string(rng.UniformInt(-179, 179));
      b = std::to_string(rng.UniformInt(-89, 89)) + " " +
          std::to_string(rng.UniformInt(-179, 179));
    }
    double dab = measure->Distance({a}, {b});
    double dba = measure->Distance({b}, {a});
    double daa = measure->Distance({a}, {a});
    EXPECT_DOUBLE_EQ(dab, dba) << GetParam() << " '" << a << "' vs '" << b << "'";
    EXPECT_GE(dab, 0.0);
    EXPECT_DOUBLE_EQ(daa, 0.0) << GetParam() << " '" << a << "'";
  }
}

TEST_P(MeasurePropertyTest, EmptySetsAreInfinitelyDistant) {
  const DistanceMeasure* measure = DistanceRegistry::Default().Find(GetParam());
  ASSERT_NE(measure, nullptr);
  EXPECT_TRUE(std::isinf(measure->Distance({}, {"x"})));
  EXPECT_TRUE(std::isinf(measure->Distance({"x"}, {})));
  EXPECT_TRUE(std::isinf(measure->Distance({}, {})));
}

TEST_P(MeasurePropertyTest, MaxThresholdPositive) {
  const DistanceMeasure* measure = DistanceRegistry::Default().Find(GetParam());
  ASSERT_NE(measure, nullptr);
  EXPECT_GT(measure->MaxThreshold(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllMeasures, MeasurePropertyTest,
                         ::testing::Values("levenshtein", "jaccard", "numeric",
                                           "geographic", "date", "jaro",
                                           "jaroWinkler", "dice", "cosine",
                                           "equality"));

// Normalized measures must stay within [0,1].
class NormalizedMeasureTest : public ::testing::TestWithParam<const char*> {};

TEST_P(NormalizedMeasureTest, DistanceWithinUnitInterval) {
  const DistanceMeasure* measure = DistanceRegistry::Default().Find(GetParam());
  ASSERT_NE(measure, nullptr);
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    ValueSet a, b;
    for (size_t k = 0; k <= rng.PickIndex(3); ++k) {
      a.push_back(RandomWord(1 + rng.PickIndex(8), rng));
    }
    for (size_t k = 0; k <= rng.PickIndex(3); ++k) {
      b.push_back(RandomWord(1 + rng.PickIndex(8), rng));
    }
    double d = measure->Distance(a, b);
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Normalized, NormalizedMeasureTest,
                         ::testing::Values("jaccard", "dice", "cosine", "jaro",
                                           "jaroWinkler", "equality"));

}  // namespace
}  // namespace genlink
