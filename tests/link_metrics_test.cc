// Tests for link-set evaluation: set precision/recall and the
// precision-recall threshold sweep.

#include <gtest/gtest.h>

#include "eval/link_metrics.h"

namespace genlink {
namespace {

ReferenceLinkSet Truth() {
  ReferenceLinkSet links;
  links.AddPositive("a1", "b1");
  links.AddPositive("a2", "b2");
  links.AddPositive("a3", "b3");
  links.AddPositive("a4", "b4");
  return links;
}

TEST(LinkMetricsTest, PerfectLinkSet) {
  std::vector<GeneratedLink> links{
      {"a1", "b1", 1.0}, {"a2", "b2", 0.9}, {"a3", "b3", 0.8}, {"a4", "b4", 0.7}};
  LinkSetMetrics m = EvaluateLinkSet(links, Truth());
  EXPECT_EQ(m.correct, 4u);
  EXPECT_DOUBLE_EQ(m.precision, 1.0);
  EXPECT_DOUBLE_EQ(m.recall, 1.0);
  EXPECT_DOUBLE_EQ(m.f_measure, 1.0);
}

TEST(LinkMetricsTest, MixedLinkSet) {
  // 2 correct, 2 wrong, 2 of 4 reference links missed.
  std::vector<GeneratedLink> links{
      {"a1", "b1", 1.0}, {"a2", "b2", 0.9}, {"a1", "b9", 0.8}, {"a9", "b1", 0.7}};
  LinkSetMetrics m = EvaluateLinkSet(links, Truth());
  EXPECT_EQ(m.correct, 2u);
  EXPECT_DOUBLE_EQ(m.precision, 0.5);
  EXPECT_DOUBLE_EQ(m.recall, 0.5);
  EXPECT_DOUBLE_EQ(m.f_measure, 0.5);
}

TEST(LinkMetricsTest, EmptyInputs) {
  LinkSetMetrics m = EvaluateLinkSet({}, Truth());
  EXPECT_DOUBLE_EQ(m.precision, 0.0);
  EXPECT_DOUBLE_EQ(m.recall, 0.0);

  ReferenceLinkSet empty;
  std::vector<GeneratedLink> links{{"a1", "b1", 1.0}};
  LinkSetMetrics m2 = EvaluateLinkSet(links, empty);
  EXPECT_DOUBLE_EQ(m2.recall, 0.0);
  EXPECT_EQ(m2.generated, 1u);
}

TEST(LinkMetricsTest, SweepTradesPrecisionForRecall) {
  // High-score links are correct, low-score ones are wrong: raising the
  // threshold must increase precision and decrease recall.
  std::vector<GeneratedLink> links{
      {"a1", "b1", 0.95}, {"a2", "b2", 0.9}, {"a3", "b3", 0.85},
      {"a1", "b9", 0.6},  {"a9", "b1", 0.55}};
  auto sweep = PrecisionRecallSweep(links, Truth(), 6, 0.5);
  ASSERT_EQ(sweep.size(), 6u);
  EXPECT_DOUBLE_EQ(sweep.front().threshold, 0.5);
  EXPECT_DOUBLE_EQ(sweep.back().threshold, 1.0);
  // At 0.5: all 5 links kept -> precision 3/5.
  EXPECT_DOUBLE_EQ(sweep.front().metrics.precision, 0.6);
  EXPECT_DOUBLE_EQ(sweep.front().metrics.recall, 0.75);
  // At 0.7: only the 3 correct links remain.
  const PrPoint* at07 = nullptr;
  for (const auto& point : sweep) {
    if (std::abs(point.threshold - 0.7) < 1e-9) at07 = &point;
  }
  ASSERT_NE(at07, nullptr);
  EXPECT_DOUBLE_EQ(at07->metrics.precision, 1.0);
  EXPECT_DOUBLE_EQ(at07->metrics.recall, 0.75);
  // Precision is monotonically non-decreasing until links run out.
  for (size_t i = 1; i < sweep.size(); ++i) {
    if (sweep[i].metrics.generated == 0) break;
    EXPECT_GE(sweep[i].metrics.precision + 1e-12, sweep[i - 1].metrics.precision);
  }
}

TEST(LinkMetricsTest, BestThresholdMaximizesF) {
  std::vector<GeneratedLink> links{
      {"a1", "b1", 0.95}, {"a2", "b2", 0.9}, {"a3", "b3", 0.85},
      {"a1", "b9", 0.6},  {"a9", "b1", 0.55}};
  auto sweep = PrecisionRecallSweep(links, Truth(), 11, 0.5);
  double best = BestThreshold(sweep);
  // The wrong links disappear above 0.6; best F is at a cut in (0.6, 0.85].
  EXPECT_GT(best, 0.6);
  EXPECT_LE(best, 0.85 + 1e-9);
}

}  // namespace
}  // namespace genlink
