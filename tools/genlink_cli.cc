// genlink - command-line interface to the library.
//
//   genlink learn  --source a.csv --target b.csv --links links.csv \
//                  [--out rule.xml] [--population N] [--iterations N]
//                  [--seed N] [--id-column id]
//   genlink match  --source a.csv --target b.csv --rule rule.xml \
//                  [--out links.csv] [--threshold 0.5]
//   genlink eval   --source a.csv --target b.csv --rule rule.xml \
//                  --links links.csv
//
// Datasets are CSV (first row = property names; use --id-column to name
// the id column) or N-Triples (*.nt). Reference links are CSV
// (id_a,id_b[,label]) or owl:sameAs N-Triples. Rules are stored in the
// Silk-style XML format (rule/xml.h); .rule files with s-expressions are
// also accepted.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "common/string_util.h"
#include "eval/link_metrics.h"
#include "gp/genlink.h"
#include "io/csv.h"
#include "io/link_io.h"
#include "io/ntriples.h"
#include "matcher/matcher.h"
#include "rule/parse.h"
#include "rule/serialize.h"
#include "rule/xml.h"

namespace genlink {
namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  const char* Get(const std::string& key, const char* fallback = nullptr) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second.c_str();
  }
};

int Usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  genlink learn --source A --target B --links L [--out rule.xml]\n"
      "                [--population 500] [--iterations 50] [--seed 42]\n"
      "                [--threads 0] [--id-column id]\n"
      "                [--islands 1] [--migration-interval 5]\n"
      "                [--migration-size 3]\n"
      "                [--match links_out.nt] [--match-threshold 0.5]\n"
      "  genlink match --source A --target B --rule R [--out links.csv]\n"
      "                [--threshold 0.5] [--threads 0] [--id-column id]\n"
      "  genlink eval  --source A --target B --rule R --links L\n"
      "                [--id-column id]\n"
      "datasets: .csv (header row = properties) or .nt (N-Triples)\n"
      "links:    .csv (id_a,id_b[,label]) or .nt (owl:sameAs)\n"
      "learn --match: after learning, link the FULL datasets with the\n"
      "learned rule (value-store matcher) and write them to the given\n"
      "path (.nt = owl:sameAs triples, anything else = CSV with scores)\n"
      "learn --islands: evolve N independent populations in parallel\n"
      "(ring migration every --migration-interval generations, top\n"
      "--migration-size rules to the next island; 1 = the paper's\n"
      "single-population algorithm)\n");
  return 2;
}

Result<Dataset> LoadDataset(const std::string& path, const char* id_column,
                            std::string name) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  if (EndsWith(path, ".nt")) {
    return ReadNTriplesDataset(*content, std::move(name));
  }
  CsvDatasetOptions options;
  if (id_column != nullptr) options.id_column = id_column;
  return ReadCsvDataset(*content, std::move(name), options);
}

Result<ReferenceLinkSet> LoadLinks(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  if (EndsWith(path, ".nt")) return ReadSameAsLinks(*content);
  return ReadLinksCsv(*content);
}

Result<LinkageRule> LoadRule(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  if (EndsWith(path, ".xml")) return ParseRuleXml(*content);
  return ParseRule(*content);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int RunLearn(const Args& args) {
  const char* source = args.Get("source");
  const char* target = args.Get("target");
  const char* links_path = args.Get("links");
  if (source == nullptr || target == nullptr || links_path == nullptr) {
    return Usage();
  }
  auto a = LoadDataset(source, args.Get("id-column", "id"), "source");
  if (!a.ok()) return Fail(a.status());
  auto b = LoadDataset(target, args.Get("id-column", "id"), "target");
  if (!b.ok()) return Fail(b.status());
  auto links = LoadLinks(links_path);
  if (!links.ok()) return Fail(links.status());

  if (links->negatives().empty()) {
    std::fprintf(stderr,
                 "note: no negative links supplied; generating %zu negatives "
                 "with the permutation scheme\n",
                 links->positives().size());
    Rng neg_rng(1);
    links->GenerateNegativesFromPositives(neg_rng);
  }

  GenLinkConfig config;
  int64_t value = 0;
  if (args.Get("population") && ParseInt64(args.Get("population"), &value)) {
    config.population_size = static_cast<size_t>(value);
  }
  if (args.Get("iterations") && ParseInt64(args.Get("iterations"), &value)) {
    config.max_iterations = static_cast<size_t>(value);
  }
  if (args.Get("threads") && ParseInt64(args.Get("threads"), &value) &&
      value >= 0) {
    config.num_threads = static_cast<size_t>(value);
  }
  if (args.Get("islands") && ParseInt64(args.Get("islands"), &value) &&
      value >= 1) {
    config.num_islands = static_cast<size_t>(value);
  }
  if (args.Get("migration-interval") &&
      ParseInt64(args.Get("migration-interval"), &value) && value >= 0) {
    config.migration_interval = static_cast<size_t>(value);
  }
  if (args.Get("migration-size") &&
      ParseInt64(args.Get("migration-size"), &value) && value >= 0) {
    config.migration_size = static_cast<size_t>(value);
  }
  uint64_t seed = 42;
  if (args.Get("seed") && ParseInt64(args.Get("seed"), &value)) {
    seed = static_cast<uint64_t>(value);
  }

  Rng rng(seed);
  auto folds = links->SplitFolds(2, rng);
  GenLink learner(*a, *b, config);
  auto result = learner.Learn(folds[0], &folds[1], rng);
  if (!result.ok()) return Fail(result.status());

  const IterationStats& final_stats = result->trajectory.iterations.back();
  std::fprintf(stderr,
               "learned in %zu iterations (%.1fs): train F1 %.3f, val F1 %.3f\n",
               final_stats.iteration, final_stats.seconds, final_stats.train_f1,
               final_stats.val_f1);

  std::string xml = ToXml(result->best_rule);
  const char* out = args.Get("out");
  if (out != nullptr) {
    Status status = WriteStringToFile(out, xml);
    if (!status.ok()) return Fail(status);
    std::fprintf(stderr, "rule written to %s\n", out);
  } else {
    std::fputs(xml.c_str(), stdout);
  }

  // learn --match: end-to-end linking. The learned rule is executed over
  // the FULL datasets (not just the labelled pairs) through the
  // value-store matcher path and the links are written out.
  const char* match_out = args.Get("match");
  if (match_out != nullptr) {
    MatchOptions match_options;
    match_options.num_threads = config.num_threads;
    double match_threshold = 0.5;
    if (args.Get("match-threshold") &&
        ParseDouble(args.Get("match-threshold"), &match_threshold)) {
      match_options.threshold = match_threshold;
    }
    auto generated = GenerateLinks(result->best_rule, *a, *b, match_options);
    std::string serialized = EndsWith(match_out, ".nt")
                                 ? WriteGeneratedLinksNt(generated)
                                 : WriteGeneratedLinksCsv(generated);
    Status status = WriteStringToFile(match_out, serialized);
    if (!status.ok()) return Fail(status);
    std::fprintf(stderr, "matched full datasets: %zu links written to %s\n",
                 generated.size(), match_out);
  }
  return 0;
}

int RunMatch(const Args& args) {
  const char* source = args.Get("source");
  const char* target = args.Get("target");
  const char* rule_path = args.Get("rule");
  if (source == nullptr || target == nullptr || rule_path == nullptr) {
    return Usage();
  }
  auto a = LoadDataset(source, args.Get("id-column", "id"), "source");
  if (!a.ok()) return Fail(a.status());
  auto b = LoadDataset(target, args.Get("id-column", "id"), "target");
  if (!b.ok()) return Fail(b.status());
  auto rule = LoadRule(rule_path);
  if (!rule.ok()) return Fail(rule.status());

  MatchOptions options;
  double threshold = 0.5;
  if (args.Get("threshold") && ParseDouble(args.Get("threshold"), &threshold)) {
    options.threshold = threshold;
  }
  int64_t threads = 0;
  if (args.Get("threads") && ParseInt64(args.Get("threads"), &threads) &&
      threads >= 0) {
    options.num_threads = static_cast<size_t>(threads);
  }
  auto links = GenerateLinks(*rule, *a, *b, options);
  std::fprintf(stderr, "generated %zu links\n", links.size());

  std::string csv = WriteGeneratedLinksCsv(links);
  const char* out = args.Get("out");
  if (out != nullptr) {
    Status status = WriteStringToFile(out, csv);
    if (!status.ok()) return Fail(status);
  } else {
    std::fputs(csv.c_str(), stdout);
  }
  return 0;
}

int RunEval(const Args& args) {
  const char* source = args.Get("source");
  const char* target = args.Get("target");
  const char* rule_path = args.Get("rule");
  const char* links_path = args.Get("links");
  if (source == nullptr || target == nullptr || rule_path == nullptr ||
      links_path == nullptr) {
    return Usage();
  }
  auto a = LoadDataset(source, args.Get("id-column", "id"), "source");
  if (!a.ok()) return Fail(a.status());
  auto b = LoadDataset(target, args.Get("id-column", "id"), "target");
  if (!b.ok()) return Fail(b.status());
  auto rule = LoadRule(rule_path);
  if (!rule.ok()) return Fail(rule.status());
  auto links = LoadLinks(links_path);
  if (!links.ok()) return Fail(links.status());

  auto generated = GenerateLinks(*rule, *a, *b);
  LinkSetMetrics metrics = EvaluateLinkSet(generated, *links);
  std::printf("generated: %zu  reference: %zu  correct: %zu\n",
              metrics.generated, metrics.reference, metrics.correct);
  std::printf("precision: %.4f  recall: %.4f  F1: %.4f\n", metrics.precision,
              metrics.recall, metrics.f_measure);

  std::printf("\nthreshold sweep:\n");
  for (const auto& point : PrecisionRecallSweep(generated, *links)) {
    std::printf("  t=%.2f  precision %.4f  recall %.4f  F1 %.4f\n",
                point.threshold, point.metrics.precision, point.metrics.recall,
                point.metrics.f_measure);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage();
  Args args;
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) return Usage();
    std::string key(arg.substr(2));
    if (i + 1 >= argc) return Usage();
    args.options[key] = argv[++i];
  }
  if (args.command == "learn") return RunLearn(args);
  if (args.command == "match") return RunMatch(args);
  if (args.command == "eval") return RunEval(args);
  return Usage();
}

}  // namespace
}  // namespace genlink

int main(int argc, char** argv) { return genlink::Main(argc, argv); }
