// genlink - command-line interface to the library.
//
//   genlink learn   learn a linkage rule from labelled reference links
//   genlink match   one-shot link generation over two datasets
//   genlink index   precompute a corpus into a mmap-able v2 index artifact
//   genlink query   serve queries against a prebuilt matcher index
//   genlink serve   HTTP daemon over a prebuilt matcher index
//   genlink apply   stream a delta CSV through a live corpus
//   genlink eval    score a rule against reference links
//   genlink gen     emit a synthetic matching corpus at configurable scale
//   genlink --version / genlink <command> --help
//
// Error and signal discipline: every failure exits 2 with a Status
// naming the flag/file that caused it; SIGINT/SIGTERM interrupt the
// long-running commands cooperatively (learn finishes the current
// generation, match/query/gen flush partial output), report what was
// kept, and exit 128+signal. `serve` instead drains gracefully and
// exits 0 (docs/SERVING.md).
//
// Datasets are CSV (first row = property names; use --id-column to name
// the id column) or N-Triples (*.nt). Reference links are CSV
// (id_a,id_b[,label]) or owl:sameAs N-Triples. Rules are stored in the
// Silk-style XML format (rule/xml.h); .rule files with s-expressions
// are also accepted. Learned rules deploy as versioned artifacts
// (io/artifact.h: rule + match options) via `learn --save-artifact`,
// which `query` loads to serve entities read from stdin or a CSV file
// — the build-once / query-many path of api/matcher_index.h.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/matcher_index.h"
#include "common/clock.h"
#include "common/string_util.h"
#include "common/thread_pool.h"
#include "datasets/synthetic.h"
#include "eval/link_metrics.h"
#include "gp/genlink.h"
#include "io/artifact.h"
#include "io/corpus_artifact.h"
#include "io/csv.h"
#include "io/link_io.h"
#include "io/ntriples.h"
#include "live/delta_csv.h"
#include "live/live_corpus.h"
#include "matcher/matcher.h"
#include "rule/parse.h"
#include "rule/serialize.h"
#include "rule/xml.h"
#include "serve/server.h"
#include "serve/serving_state.h"

// Kept in sync with the CMake project version by tools/CMakeLists.txt.
#ifndef GENLINK_VERSION
#define GENLINK_VERSION "0.0.0-dev"
#endif

namespace genlink {
namespace {

/// ---- SIGINT/SIGTERM: cooperative interruption. The handler only
/// performs async-signal-safe work — relaxed atomic stores and one
/// write() to the serve daemon's self-pipe. Each command polls the
/// flag (or threads g_cancel through the library's cancellation
/// points), flushes partial output, and exits 128+signal; `serve`
/// drains instead and exits 0.
std::atomic<bool> g_interrupted{false};
std::atomic<int> g_signal{0};
std::atomic<int> g_serve_shutdown_fd{-1};
CancelToken g_cancel;

void HandleSignal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
  g_interrupted.store(true, std::memory_order_relaxed);
  g_cancel.RequestCancel();
  const int fd = g_serve_shutdown_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void InstallSignalHandlers() {
  struct sigaction action = {};
  action.sa_handler = HandleSignal;
  ::sigemptyset(&action.sa_mask);
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

/// The CLI's exit code after an interrupt (128+signal, shell style).
int InterruptExitCode() {
  return 128 + g_signal.load(std::memory_order_relaxed);
}

const char* SignalName() {
  return g_signal.load(std::memory_order_relaxed) == SIGTERM ? "SIGTERM"
                                                             : "SIGINT";
}

struct Args {
  std::string command;
  std::map<std::string, std::string> options;

  const char* Get(const std::string& key, const char* fallback = nullptr) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second.c_str();
  }
  bool Has(const std::string& key) const { return options.count(key) > 0; }
};

/// One flag of a subcommand. `value_name` null means a boolean flag
/// (present/absent, no value argument).
struct FlagSpec {
  const char* name;
  const char* value_name;
  const char* help;
  bool required = false;
};

struct CommandSpec {
  const char* name;
  const char* summary;
  std::vector<FlagSpec> flags;
  /// Free-form paragraph printed at the end of --help (may be null).
  const char* notes;
};

const std::vector<CommandSpec>& Commands() {
  static const std::vector<CommandSpec> kCommands = {
      {"learn",
       "learn a linkage rule from labelled reference links (GenLink)",
       {
           {"source", "FILE", "source dataset (.csv or .nt)", true},
           {"target", "FILE", "target dataset (.csv or .nt)", true},
           {"links", "FILE", "reference links (.csv or owl:sameAs .nt)", true},
           {"out", "FILE", "write the learned rule as XML (default: stdout)"},
           {"save-artifact", "FILE",
            "also write a deployment artifact (rule + match options) "
            "that `genlink query --artifact` serves"},
           {"population", "N", "population size (default 500)"},
           {"iterations", "N", "maximum iterations (default 50)"},
           {"seed", "N", "random seed (default 42)"},
           {"threads", "N", "worker threads, 0 = hardware (default 0)"},
           {"id-column", "NAME", "CSV id column (default 'id')"},
           {"islands", "N", "independent populations (default 1)"},
           {"migration-interval", "N",
            "generations between island migrations (default 5)"},
           {"migration-size", "N", "rules migrated per interval (default 3)"},
           {"match", "FILE",
            "after learning, link the FULL datasets with the learned rule "
            "and write them (.nt = owl:sameAs, else CSV with scores)"},
           {"match-threshold", "T",
            "similarity threshold for --match and --save-artifact "
            "(default 0.5)"},
       },
       "learn --islands evolves N independent populations in parallel\n"
       "(ring migration every --migration-interval generations, top\n"
       "--migration-size rules to the next island; 1 = the paper's\n"
       "single-population algorithm)"},
      {"match",
       "one-shot link generation: execute a rule over two datasets",
       {
           {"source", "FILE", "source dataset (.csv or .nt)", true},
           {"target", "FILE", "target dataset (.csv or .nt)", true},
           {"rule", "FILE", "linkage rule (.xml or s-expression .rule)", true},
           {"out", "FILE", "write links CSV (default: stdout)"},
           {"threshold", "T", "minimum similarity (default 0.5)"},
           {"best-match", nullptr,
            "keep only the best target per source entity (ties: highest "
            "score, then smallest id)"},
           {"threads", "N", "worker threads, 0 = hardware (default 0)"},
           {"id-column", "NAME", "CSV id column (default 'id')"},
           {"blocking-top-tokens", "K",
            "weighted blocking: index each target entity under only its K "
            "rarest tokens (0 = all tokens, default)"},
           {"blocking-min-df", "N",
            "skip blocking tokens seen in fewer than N target entities "
            "(default 1 = keep all)"},
           {"blocking-shards", "N",
            "partition blocking postings across N hash shards (default 1; "
            "links are identical for any value)"},
       },
       "match rebuilds the execution artifacts on every invocation; for\n"
       "repeated matching against the same corpus use `genlink query`"},
      {"index",
       "precompute a corpus into a zero-copy v2 index artifact "
       "(mmap-able, crash-safe write)",
       {
           {"target", "FILE", "corpus dataset to index (.csv or .nt)", true},
           {"out", "FILE", "write the corpus index artifact", true},
           {"artifact", "FILE",
            "deployment artifact from `learn --save-artifact` whose rule "
            "and options define the precomputed plans"},
           {"rule", "FILE",
            "bare rule (.xml or .rule) with default options instead of "
            "--artifact"},
           {"threads", "N", "plan-evaluation threads, 0 = hardware (default 0)"},
           {"id-column", "NAME", "CSV id column (default 'id')"},
           {"blocking-top-tokens", "K",
            "weighted blocking: index each corpus entity under only its K "
            "rarest tokens (0 = all tokens, default)"},
           {"blocking-min-df", "N",
            "skip blocking tokens seen in fewer than N corpus entities "
            "(default 1 = keep all)"},
           {"blocking-shards", "N",
            "partition blocking postings across N hash shards (default 1; "
            "links are identical for any value)"},
       },
       "index precomputes the rule's target-side value plans and the\n"
       "token-blocking postings into one flat binary file that `query\n"
       "--index` and `serve --index` mmap for millisecond cold starts\n"
       "(docs/ARTIFACTS.md). The file is written atomically: a crash\n"
       "mid-write never clobbers an existing artifact. Pass exactly one\n"
       "of --artifact or --rule; the blocking flags must match the ones\n"
       "the corpus will be served under."},
      {"query",
       "serve entity queries against a prebuilt matcher index",
       {
           {"target", "FILE", "indexed corpus dataset (.csv or .nt)"},
           {"index", "FILE",
            "mmap a v2 corpus artifact from `genlink index` instead of "
            "--target (zero-copy cold start)"},
           {"artifact", "FILE",
            "deployment artifact from `learn --save-artifact` (rule + "
            "options)"},
           {"rule", "FILE",
            "bare rule (.xml or .rule) with default options instead of "
            "--artifact"},
           {"entities", "FILE",
            "query entities as CSV with a header row (default: stdin)"},
           {"out", "FILE", "write links CSV (default: stdout, streamed)"},
           {"threshold", "T", "override the artifact's threshold"},
           {"best-match", nullptr, "keep only the best link per query"},
           {"threads", "N", "worker threads, 0 = hardware (default 0)"},
           {"id-column", "NAME", "CSV id column (default 'id')"},
           {"blocking-top-tokens", "K",
            "weighted blocking: index each corpus entity under only its K "
            "rarest tokens (0 = all tokens, default)"},
           {"blocking-min-df", "N",
            "skip blocking tokens seen in fewer than N corpus entities "
            "(default 1 = keep all)"},
           {"blocking-shards", "N",
            "partition blocking postings across N hash shards (default 1; "
            "links are identical for any value)"},
       },
       "query builds the index once (token blocking + compiled value\n"
       "store, api/matcher_index.h), then answers each input entity with\n"
       "its matching corpus entities, streaming one CSV row per link as\n"
       "queries arrive. Pass exactly one of --artifact or --rule, and\n"
       "exactly one of --target (parse + build) or --index (mmap a\n"
       "precomputed `genlink index` artifact, docs/ARTIFACTS.md)."},
      {"serve",
       "HTTP daemon over a prebuilt matcher index (deadlines, admission "
       "control, hot reload)",
       {
           {"target", "FILE", "indexed corpus dataset (.csv or .nt)"},
           {"index", "FILE",
            "mmap a v2 corpus artifact from `genlink index` instead of "
            "--target (zero-copy cold start)"},
           {"artifact", "FILE",
            "deployment artifact from `learn --save-artifact`; also the "
            "file POST /reload re-reads", true},
           {"port", "N",
            "TCP port on 127.0.0.1 (default 0 = ephemeral; the bound port "
            "is printed and written to --port-file)"},
           {"port-file", "FILE",
            "write the bound port as a decimal string (for scripts)"},
           {"workers", "N", "connection handler threads (default 2)"},
           {"max-queue", "N",
            "accepted connections waiting for a worker before new ones "
            "are shed with 503 (default 16)"},
           {"request-deadline-ms", "N",
            "per-request processing budget; exceeded => 504 (default 2000)"},
           {"read-timeout-ms", "N",
            "budget for a request's bytes to arrive; stalled => 408 "
            "(default 5000)"},
           {"drain-deadline-ms", "N",
            "after SIGTERM, budget to finish in-flight requests "
            "(default 5000)"},
           {"threads", "N", "matcher worker threads, 0 = hardware (default 0)"},
           {"id-column", "NAME", "CSV id column of query bodies (default 'id')"},
           {"live", nullptr,
            "serve a mutable live corpus: POST /upsert, /delete and "
            "/compact mutate it between queries (docs/STREAMING.md)"},
           {"compact-threshold", "N",
            "with --live: auto-compact once the delta log holds N "
            "entries (default 0 = manual /compact only)"},
       },
       "serve answers GET /healthz, GET /varz, POST /match (CSV entities\n"
       "in, links CSV out) and POST /reload on 127.0.0.1; with --live\n"
       "also POST /upsert, /delete and /compact. Overloaded connections\n"
       "get an immediate 503 + Retry-After; SIGTERM drains in-flight\n"
       "requests and exits 0. Pass exactly one of --target or --index.\n"
       "See docs/SERVING.md."},
      {"apply",
       "stream a delta CSV (upserts/deletes) through a live corpus",
       {
           {"target", "FILE", "base corpus dataset (.csv or .nt)"},
           {"index", "FILE",
            "mmap a v2 corpus artifact from `genlink index` instead of "
            "--target (upserts/deletes work; compaction and --verify "
            "need --target)"},
           {"artifact", "FILE",
            "deployment artifact from `learn --save-artifact` (rule + "
            "options)"},
           {"rule", "FILE",
            "bare rule (.xml or .rule) with default options instead of "
            "--artifact"},
           {"deltas", "FILE",
            "delta CSV from `gen --out-deltas` (header op,id,<props>)", true},
           {"batch-size", "N",
            "ops per ApplyBatch epoch (default 256; each batch publishes "
            "one snapshot)"},
           {"compact-every", "N",
            "run a compaction after every N batches (default 0 = never)"},
           {"compact-threshold", "N",
            "auto-compact once the delta log holds N entries (default 0 "
            "= manual)"},
           {"out-index", "FILE",
            "after the stream, compact and persist the final corpus as a "
            "v2 index artifact (crash-safe write)"},
           {"verify", nullptr,
            "after the stream, rebuild a fresh index over the logical "
            "corpus and check the mutated index answers bit-identically"},
           {"threshold", "T", "override the artifact's threshold"},
           {"best-match", nullptr, "keep only the best link per query"},
           {"threads", "N", "worker threads, 0 = hardware (default 0)"},
           {"id-column", "NAME", "CSV id column (default 'id')"},
       },
       "apply feeds the delta stream through the same LiveCorpus layer\n"
       "`serve --live` uses: batches publish epoch snapshots, deletes\n"
       "tombstone, compactions fold base+delta into a fresh base. Pass\n"
       "exactly one of --target or --index and exactly one of --artifact\n"
       "or --rule. --verify proves the streamed index bit-identical to a\n"
       "cold rebuild of the final corpus (docs/STREAMING.md)."},
      {"gen",
       "emit a synthetic matching corpus at configurable scale",
       {
           {"out-source", "FILE", "write the clean source side as CSV", true},
           {"out-target", "FILE", "write the noisy target side as CSV", true},
           {"out-links", "FILE", "write ground-truth links CSV", true},
           {"entities", "N", "records per side (default 10000)"},
           {"duplicate-rate", "P",
            "probability a target record is a perturbed duplicate of its "
            "source counterpart (default 0.35)"},
           {"confusable-rate", "P",
            "probability a non-duplicate shares address, city and surname "
            "(a hard negative; default 0.1)"},
           {"typo-rate", "P",
            "per-text-property typo probability in duplicates (default 0.3)"},
           {"missing-rate", "P",
            "per-property missing-value probability in duplicates "
            "(default 0.05)"},
           {"seed", "N", "random seed (default 11)"},
           {"threads", "N",
            "generation threads, 0 = hardware (default 0); output is "
            "byte-identical for any value"},
           {"deltas", "N",
            "also emit N streaming mutations (updates/deletes/new "
            "records) against the target side (default 0)"},
           {"out-deltas", "FILE",
            "write the delta stream as delta CSV (required with --deltas; "
            "feeds `genlink apply --deltas`)"},
           {"delta-delete-rate", "P",
            "probability a delta removes a live entity (default 0.2)"},
           {"delta-new-rate", "P",
            "probability an upsert introduces a new entity instead of "
            "rewriting one (default 0.25)"},
           {"delta-seed", "N", "delta stream seed (default 29)"},
       },
       "gen writes a person-directory corpus (name, address, city, phone,\n"
       "birth year) whose target side perturbs duplicates with typos,\n"
       "abbreviations, case noise, phone reformatting and missing fields\n"
       "(src/datasets/synthetic.h). Same seed => byte-identical output for\n"
       "any --threads value. The three files feed `genlink learn`,\n"
       "`match` and `eval` directly; --deltas adds a deterministic\n"
       "update/delete stream for `genlink apply` and `serve --live`."},
      {"eval",
       "evaluate a rule's generated links against reference links",
       {
           {"source", "FILE", "source dataset (.csv or .nt)", true},
           {"target", "FILE", "target dataset (.csv or .nt)", true},
           {"rule", "FILE", "linkage rule (.xml or s-expression .rule)", true},
           {"links", "FILE", "reference links (.csv or owl:sameAs .nt)", true},
           {"id-column", "NAME", "CSV id column (default 'id')"},
       },
       nullptr},
  };
  return kCommands;
}

const CommandSpec* FindCommand(std::string_view name) {
  for (const CommandSpec& command : Commands()) {
    if (name == command.name) return &command;
  }
  return nullptr;
}

void PrintCommandHelp(const CommandSpec& spec, std::FILE* out) {
  std::fprintf(out, "usage: genlink %s", spec.name);
  for (const FlagSpec& flag : spec.flags) {
    if (flag.required) std::fprintf(out, " --%s %s", flag.name, flag.value_name);
  }
  std::fprintf(out, " [options]\n\n%s\n\noptions:\n", spec.summary);
  for (const FlagSpec& flag : spec.flags) {
    std::string left = std::string("--") + flag.name;
    if (flag.value_name != nullptr) left += std::string(" ") + flag.value_name;
    std::fprintf(out, "  %-22s %s%s\n", left.c_str(), flag.help,
                 flag.required ? "  [required]" : "");
  }
  std::fprintf(out,
               "\ndatasets: .csv (header row = properties) or .nt (N-Triples)\n"
               "links:    .csv (id_a,id_b[,label]) or .nt (owl:sameAs)\n");
  if (spec.notes != nullptr) std::fprintf(out, "\n%s\n", spec.notes);
}

void PrintTopHelp(std::FILE* out) {
  std::fprintf(out,
               "usage: genlink <command> [options]\n"
               "       genlink <command> --help\n"
               "       genlink --version\n\ncommands:\n");
  for (const CommandSpec& command : Commands()) {
    std::fprintf(out, "  %-7s %s\n", command.name, command.summary);
  }
}

/// Parses argv[2..] against the command's flag table into `args`.
/// Returns -1 to continue, otherwise the process exit code (0 for
/// --help, 2 for a flag error). Errors name the offending flag.
int ParseFlags(const CommandSpec& spec, int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintCommandHelp(spec, stdout);
      return 0;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr,
                   "genlink %s: unexpected argument '%s'\n"
                   "(run 'genlink %s --help' for usage)\n",
                   spec.name, argv[i], spec.name);
      return 2;
    }
    const std::string key(arg.substr(2));
    const FlagSpec* flag = nullptr;
    for (const FlagSpec& candidate : spec.flags) {
      if (key == candidate.name) {
        flag = &candidate;
        break;
      }
    }
    if (flag == nullptr) {
      std::fprintf(stderr,
                   "genlink %s: unknown flag '--%s'\n"
                   "(run 'genlink %s --help' for usage)\n",
                   spec.name, key.c_str(), spec.name);
      return 2;
    }
    if (flag->value_name != nullptr) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "genlink %s: flag '--%s' expects a value (%s)\n",
                     spec.name, key.c_str(), flag->value_name);
        return 2;
      }
      args.options[key] = argv[++i];
    } else {
      args.options[key] = "1";
    }
  }
  for (const FlagSpec& flag : spec.flags) {
    if (flag.required && !args.Has(flag.name)) {
      std::fprintf(stderr,
                   "genlink %s: missing required flag '--%s'\n"
                   "(run 'genlink %s --help' for usage)\n",
                   spec.name, flag.name, spec.name);
      return 2;
    }
  }
  return -1;
}

Result<Dataset> LoadDataset(const std::string& path, const char* id_column,
                            std::string name) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  if (EndsWith(path, ".nt")) {
    return ReadNTriplesDataset(*content, std::move(name));
  }
  CsvDatasetOptions options;
  if (id_column != nullptr) options.id_column = id_column;
  return ReadCsvDataset(*content, std::move(name), options);
}

Result<ReferenceLinkSet> LoadLinks(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  if (EndsWith(path, ".nt")) return ReadSameAsLinks(*content);
  return ReadLinksCsv(*content);
}

Result<LinkageRule> LoadRule(const std::string& path) {
  auto content = ReadFileToString(path);
  if (!content.ok()) return content.status();
  if (EndsWith(path, ".xml")) return ParseRuleXml(*content);
  return ParseRule(*content);
}

/// Every subcommand failure exits 2 — the same code as a flag parse
/// error, so scripts can distinguish "bad invocation or input" (2)
/// from an interrupt (128+signal).
int Fail(const Status& status) {
  std::fprintf(stderr, "genlink: error: %s\n", status.ToString().c_str());
  return 2;
}

/// Fail naming the flag and file the status came from:
///   genlink match: --rule bad.xml: ParseError: ...
int FailFlagFile(const char* command, const char* flag, const char* path,
                 const Status& status) {
  std::fprintf(stderr, "genlink %s: --%s %s: %s\n", command, flag, path,
               status.ToString().c_str());
  return 2;
}

/// Parses an optional numeric flag. Returns false (after an error
/// naming the flag, CLI exit code 2) when the value is present but
/// does not parse — malformed numbers must never silently fall back to
/// the default.
bool FlagAsDouble(const Args& args, const char* command, const char* name,
                  double* out) {
  const char* raw = args.Get(name);
  if (raw == nullptr) return true;
  if (ParseDouble(raw, out)) return true;
  std::fprintf(stderr, "genlink %s: flag '--%s' expects a number, got '%s'\n",
               command, name, raw);
  return false;
}

/// Same for non-negative integer flags, with a lower bound.
bool FlagAsCount(const Args& args, const char* command, const char* name,
                 int64_t min_value, size_t* out) {
  const char* raw = args.Get(name);
  if (raw == nullptr) return true;
  int64_t value = 0;
  if (ParseInt64(raw, &value) && value >= min_value) {
    *out = static_cast<size_t>(value);
    return true;
  }
  std::fprintf(stderr,
               "genlink %s: flag '--%s' expects an integer >= %lld, got '%s'\n",
               command, name, static_cast<long long>(min_value), raw);
  return false;
}

int RunLearn(const Args& args) {
  // Validate every numeric flag before touching the filesystem, so a
  // typo fails fast with exit 2.
  GenLinkConfig config;
  size_t seed_value = 42;
  MatchOptions match_options;
  if (!FlagAsCount(args, "learn", "population", 1, &config.population_size) ||
      !FlagAsCount(args, "learn", "iterations", 1, &config.max_iterations) ||
      !FlagAsCount(args, "learn", "threads", 0, &config.num_threads) ||
      !FlagAsCount(args, "learn", "islands", 1, &config.num_islands) ||
      !FlagAsCount(args, "learn", "migration-interval", 0,
                   &config.migration_interval) ||
      !FlagAsCount(args, "learn", "migration-size", 0,
                   &config.migration_size) ||
      !FlagAsCount(args, "learn", "seed", 0, &seed_value) ||
      !FlagAsDouble(args, "learn", "match-threshold",
                    &match_options.threshold)) {
    return 2;
  }
  const uint64_t seed = seed_value;
  match_options.num_threads = config.num_threads;
  // SIGINT/SIGTERM stop learning at the next generation boundary; the
  // best rule so far is still written below.
  config.stop_requested = &g_interrupted;

  auto a = LoadDataset(args.Get("source"), args.Get("id-column", "id"), "source");
  if (!a.ok()) {
    return FailFlagFile("learn", "source", args.Get("source"), a.status());
  }
  auto b = LoadDataset(args.Get("target"), args.Get("id-column", "id"), "target");
  if (!b.ok()) {
    return FailFlagFile("learn", "target", args.Get("target"), b.status());
  }
  auto links = LoadLinks(args.Get("links"));
  if (!links.ok()) {
    return FailFlagFile("learn", "links", args.Get("links"), links.status());
  }

  if (links->negatives().empty()) {
    std::fprintf(stderr,
                 "note: no negative links supplied; generating %zu negatives "
                 "with the permutation scheme\n",
                 links->positives().size());
    Rng neg_rng(1);
    links->GenerateNegativesFromPositives(neg_rng);
  }

  Rng rng(seed);
  auto folds = links->SplitFolds(2, rng);
  GenLink learner(*a, *b, config);
  auto result = learner.Learn(folds[0], &folds[1], rng);
  if (!result.ok()) return Fail(result.status());

  const IterationStats& final_stats = result->trajectory.iterations.back();
  if (result->interrupted) {
    std::fprintf(stderr,
                 "interrupted by %s after %zu iterations; writing the best "
                 "rule so far\n",
                 SignalName(), final_stats.iteration);
  }
  std::fprintf(stderr,
               "learned in %zu iterations (%.1fs): train F1 %.3f, val F1 %.3f\n",
               final_stats.iteration, final_stats.seconds, final_stats.train_f1,
               final_stats.val_f1);

  std::string xml = ToXml(result->best_rule);
  const char* out = args.Get("out");
  if (out != nullptr) {
    Status status = WriteStringToFile(out, xml);
    if (!status.ok()) return FailFlagFile("learn", "out", out, status);
    std::fprintf(stderr, "rule written to %s\n", out);
  } else {
    std::fputs(xml.c_str(), stdout);
    std::fflush(stdout);
  }

  // learn --save-artifact: bundle the learned rule with the options it
  // should be served under, for `genlink query --artifact`.
  const char* artifact_out = args.Get("save-artifact");
  if (artifact_out != nullptr) {
    RuleArtifact artifact;
    artifact.name = "genlink-learn";
    artifact.rule = result->best_rule.Clone();
    artifact.options = match_options;
    Status status = SaveArtifact(artifact_out, artifact);
    if (!status.ok()) {
      return FailFlagFile("learn", "save-artifact", artifact_out, status);
    }
    std::fprintf(stderr, "artifact written to %s\n", artifact_out);
  }

  // learn --match: end-to-end linking. The learned rule is executed over
  // the FULL datasets (not just the labelled pairs) through the
  // value-store matcher path and the links are written out.
  const char* match_out = args.Get("match");
  if (match_out != nullptr && !g_interrupted.load(std::memory_order_relaxed)) {
    auto generated = GenerateLinks(result->best_rule, *a, *b, match_options);
    std::string serialized = EndsWith(match_out, ".nt")
                                 ? WriteGeneratedLinksNt(generated)
                                 : WriteGeneratedLinksCsv(generated);
    Status status = WriteStringToFile(match_out, serialized);
    if (!status.ok()) return FailFlagFile("learn", "match", match_out, status);
    std::fprintf(stderr, "matched full datasets: %zu links written to %s\n",
                 generated.size(), match_out);
  }
  return result->interrupted ? InterruptExitCode() : 0;
}

int RunMatch(const Args& args) {
  MatchOptions options;
  options.best_match_only = args.Has("best-match");
  if (!FlagAsDouble(args, "match", "threshold", &options.threshold) ||
      !FlagAsCount(args, "match", "threads", 0, &options.num_threads) ||
      !FlagAsCount(args, "match", "blocking-top-tokens", 0,
                   &options.blocking_max_tokens) ||
      !FlagAsCount(args, "match", "blocking-min-df", 1,
                   &options.blocking_min_token_df) ||
      !FlagAsCount(args, "match", "blocking-shards", 1,
                   &options.blocking_shards)) {
    return 2;
  }

  auto a = LoadDataset(args.Get("source"), args.Get("id-column", "id"), "source");
  if (!a.ok()) {
    return FailFlagFile("match", "source", args.Get("source"), a.status());
  }
  auto b = LoadDataset(args.Get("target"), args.Get("id-column", "id"), "target");
  if (!b.ok()) {
    return FailFlagFile("match", "target", args.Get("target"), b.status());
  }
  auto rule = LoadRule(args.Get("rule"));
  if (!rule.ok()) {
    return FailFlagFile("match", "rule", args.Get("rule"), rule.status());
  }

  // SIGINT/SIGTERM cancel the join between entities; the links scored
  // so far are still flushed below, marked as partial on stderr.
  options.cancel = &g_cancel;
  auto links = GenerateLinks(*rule, *a, *b, options);
  const bool interrupted = g_interrupted.load(std::memory_order_relaxed);
  std::fprintf(stderr, "generated %zu links%s\n", links.size(),
               interrupted ? " (PARTIAL: interrupted)" : "");

  std::string csv = WriteGeneratedLinksCsv(links);
  const char* out = args.Get("out");
  if (out != nullptr) {
    Status status = WriteStringToFile(out, csv);
    if (!status.ok()) return FailFlagFile("match", "out", out, status);
  } else {
    std::fputs(csv.c_str(), stdout);
    std::fflush(stdout);
  }
  if (interrupted) {
    std::fprintf(stderr, "interrupted by %s; partial links written\n",
                 SignalName());
    return InterruptExitCode();
  }
  return 0;
}

int RunIndex(const Args& args) {
  const char* artifact_path = args.Get("artifact");
  const char* rule_path = args.Get("rule");
  if ((artifact_path == nullptr) == (rule_path == nullptr)) {
    std::fprintf(stderr,
                 "genlink index: pass exactly one of --artifact or --rule\n"
                 "(run 'genlink index --help' for usage)\n");
    return 2;
  }
  size_t threads = 0;
  size_t top_tokens = 0;
  size_t min_df = 1;
  size_t shards = 1;
  if (!FlagAsCount(args, "index", "threads", 0, &threads) ||
      !FlagAsCount(args, "index", "blocking-top-tokens", 0, &top_tokens) ||
      !FlagAsCount(args, "index", "blocking-min-df", 1, &min_df) ||
      !FlagAsCount(args, "index", "blocking-shards", 1, &shards)) {
    return 2;
  }

  auto target =
      LoadDataset(args.Get("target"), args.Get("id-column", "id"), "target");
  if (!target.ok()) {
    return FailFlagFile("index", "target", args.Get("target"), target.status());
  }

  RuleArtifact artifact;
  if (artifact_path != nullptr) {
    auto loaded = LoadArtifact(artifact_path);
    if (!loaded.ok()) {
      return FailFlagFile("index", "artifact", artifact_path, loaded.status());
    }
    artifact = std::move(*loaded);
  } else {
    auto rule = LoadRule(rule_path);
    if (!rule.ok()) {
      return FailFlagFile("index", "rule", rule_path, rule.status());
    }
    artifact.rule = std::move(*rule);
  }
  // The blocking knobs are baked into the artifact; `query --index` /
  // `serve --index` refuse to serve under different ones.
  if (args.Has("blocking-top-tokens")) {
    artifact.options.blocking_max_tokens = top_tokens;
  }
  if (args.Has("blocking-min-df")) {
    artifact.options.blocking_min_token_df = min_df;
  }
  if (args.Has("blocking-shards")) artifact.options.blocking_shards = shards;

  const char* out = args.Get("out");
  ThreadPool pool(threads);
  CorpusArtifactStats stats;
  const auto start = std::chrono::steady_clock::now();
  Status written =
      WriteCorpusArtifact(out, *target, artifact.rule, artifact.options, &pool,
                          &stats);
  if (!written.ok()) return FailFlagFile("index", "out", out, written);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::fprintf(stderr,
               "indexed %llu entities in %.3fs: %llu strings, %llu value "
               "plans, %llu blocking tokens, %llu postings "
               "(%.1f MiB) -> %s\n",
               static_cast<unsigned long long>(stats.num_entities), seconds,
               static_cast<unsigned long long>(stats.num_strings),
               static_cast<unsigned long long>(stats.num_plans),
               static_cast<unsigned long long>(stats.num_tokens),
               static_cast<unsigned long long>(stats.num_postings),
               static_cast<double>(stats.file_bytes) / (1024.0 * 1024.0), out);
  return 0;
}

int RunQuery(const Args& args) {
  const char* artifact_path = args.Get("artifact");
  const char* rule_path = args.Get("rule");
  if ((artifact_path == nullptr) == (rule_path == nullptr)) {
    std::fprintf(stderr,
                 "genlink query: pass exactly one of --artifact or --rule\n"
                 "(run 'genlink query --help' for usage)\n");
    return 2;
  }
  const char* target_path = args.Get("target");
  const char* index_path = args.Get("index");
  if ((target_path == nullptr) == (index_path == nullptr)) {
    std::fprintf(stderr,
                 "genlink query: pass exactly one of --target or --index\n"
                 "(run 'genlink query --help' for usage)\n");
    return 2;
  }
  // Validate the overrides before any file I/O; they apply on top of
  // the artifact's options once it is loaded.
  double threshold_override = 0.0;
  size_t threads_override = 0;
  size_t top_tokens_override = 0;
  size_t min_df_override = 1;
  size_t shards_override = 1;
  if (!FlagAsDouble(args, "query", "threshold", &threshold_override) ||
      !FlagAsCount(args, "query", "threads", 0, &threads_override) ||
      !FlagAsCount(args, "query", "blocking-top-tokens", 0,
                   &top_tokens_override) ||
      !FlagAsCount(args, "query", "blocking-min-df", 1, &min_df_override) ||
      !FlagAsCount(args, "query", "blocking-shards", 1, &shards_override)) {
    return 2;
  }

  // Exactly one of these two corpus sources is populated; the mapped
  // corpus (and with it every span the index serves) stays alive for
  // the whole query loop via the shared_ptr.
  std::optional<Dataset> target;
  std::shared_ptr<const MappedCorpus> mapped;
  if (target_path != nullptr) {
    auto loaded = LoadDataset(target_path, args.Get("id-column", "id"), "target");
    if (!loaded.ok()) {
      return FailFlagFile("query", "target", target_path, loaded.status());
    }
    target.emplace(std::move(*loaded));
  } else {
    auto loaded = MappedCorpus::Load(index_path);
    if (!loaded.ok()) {
      return FailFlagFile("query", "index", index_path, loaded.status());
    }
    mapped = std::move(*loaded);
  }

  RuleArtifact artifact;
  if (artifact_path != nullptr) {
    auto loaded = LoadArtifact(artifact_path);
    if (!loaded.ok()) {
      return FailFlagFile("query", "artifact", artifact_path, loaded.status());
    }
    artifact = std::move(*loaded);
  } else {
    auto rule = LoadRule(rule_path);
    if (!rule.ok()) {
      return FailFlagFile("query", "rule", rule_path, rule.status());
    }
    artifact.rule = std::move(*rule);
  }
  if (args.Has("best-match")) artifact.options.best_match_only = true;
  if (args.Has("threshold")) artifact.options.threshold = threshold_override;
  if (args.Has("threads")) artifact.options.num_threads = threads_override;
  if (args.Has("blocking-top-tokens")) {
    artifact.options.blocking_max_tokens = top_tokens_override;
  }
  if (args.Has("blocking-min-df")) {
    artifact.options.blocking_min_token_df = min_df_override;
  }
  if (args.Has("blocking-shards")) {
    artifact.options.blocking_shards = shards_override;
  }

  // Build once; every query below is a cheap lookup against these
  // artifacts (api/matcher_index.h). The mapped build fails with a
  // named error when the artifact lacks the rule's plans or was indexed
  // under different blocking knobs — re-run `genlink index`.
  std::shared_ptr<const MatcherIndex> index;
  if (mapped != nullptr) {
    auto built = MatcherIndex::Build(mapped, artifact.rule, artifact.options);
    if (!built.ok()) {
      return FailFlagFile("query", "index", index_path, built.status());
    }
    index = std::move(*built);
  } else {
    index = MatcherIndex::Build(*target, artifact.rule, artifact.options);
  }
  MatcherIndexStats stats = index->stats();
  std::fprintf(stderr,
               "index built over %zu entities in %.3fs "
               "(%zu blocking tokens, %zu postings in %zu shard%s, "
               "%zu value plans)\n",
               stats.target_entities, stats.build_seconds,
               stats.blocking_tokens, stats.blocking_postings,
               stats.blocking_shards, stats.blocking_shards == 1 ? "" : "s",
               stats.value_plans);

  // Query source: a CSV file or stdin, consumed INCREMENTALLY — each
  // record is served as soon as its line(s) arrive, so a long-running
  // producer piping into `genlink query` sees answers before closing
  // the stream.
  std::ifstream entities_file;
  std::istream* in = &std::cin;
  if (const char* entities_path = args.Get("entities")) {
    entities_file.open(entities_path, std::ios::binary);
    if (!entities_file) {
      return FailFlagFile("query", "entities", entities_path,
                          Status::IoError("cannot open file"));
    }
    in = &entities_file;
  }
  CsvDatasetOptions csv_options;
  csv_options.id_column = args.Get("id-column", "id");
  CsvEntityStream queries(*in, csv_options);
  if (!queries.status().ok()) {
    return FailFlagFile("query", "entities", args.Get("entities", "<stdin>"),
                        queries.status());
  }

  std::FILE* out = stdout;
  const char* out_path = args.Get("out");
  if (out_path != nullptr) {
    out = std::fopen(out_path, "wb");
    if (out == nullptr) {
      return FailFlagFile("query", "out", out_path,
                          Status::IoError("cannot open file"));
    }
  }

  std::fwrite(kGeneratedLinksCsvHeader.data(), 1,
              kGeneratedLinksCsvHeader.size(), out);
  std::fflush(out);
  size_t served = 0;
  size_t total_links = 0;
  const auto start = std::chrono::steady_clock::now();
  Entity entity;
  while (!g_interrupted.load(std::memory_order_relaxed) &&
         queries.Next(&entity)) {
    auto links = index->MatchEntity(entity, queries.schema());
    for (const GeneratedLink& link : links) {
      const std::string row = GeneratedLinkCsvRow(link);
      std::fwrite(row.data(), 1, row.size(), out);
    }
    ++served;
    total_links += links.size();
    std::fflush(out);
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  if (out != stdout) std::fclose(out);
  if (!queries.status().ok()) {
    return FailFlagFile("query", "entities", args.Get("entities", "<stdin>"),
                        queries.status());
  }
  std::fprintf(stderr, "served %zu queries, %zu links (%.0f queries/s)\n",
               served, total_links, seconds > 0.0 ? served / seconds : 0.0);
  if (g_interrupted.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "interrupted by %s; answers so far were flushed\n",
                 SignalName());
    return InterruptExitCode();
  }
  return 0;
}

int RunServe(const Args& args) {
  size_t port = 0;
  size_t workers = 2;
  size_t max_queue = 16;
  size_t request_deadline_ms = 2000;
  size_t read_timeout_ms = 5000;
  size_t drain_deadline_ms = 5000;
  size_t threads = 0;
  size_t compact_threshold = 0;
  if (!FlagAsCount(args, "serve", "port", 0, &port) ||
      !FlagAsCount(args, "serve", "workers", 1, &workers) ||
      !FlagAsCount(args, "serve", "max-queue", 0, &max_queue) ||
      !FlagAsCount(args, "serve", "request-deadline-ms", 1,
                   &request_deadline_ms) ||
      !FlagAsCount(args, "serve", "read-timeout-ms", 1, &read_timeout_ms) ||
      !FlagAsCount(args, "serve", "drain-deadline-ms", 1, &drain_deadline_ms) ||
      !FlagAsCount(args, "serve", "threads", 0, &threads) ||
      !FlagAsCount(args, "serve", "compact-threshold", 0, &compact_threshold)) {
    return 2;
  }
  if (port > 65535) {
    std::fprintf(stderr, "genlink serve: flag '--port' expects <= 65535\n");
    return 2;
  }
  if (args.Has("compact-threshold") && !args.Has("live")) {
    std::fprintf(stderr,
                 "genlink serve: flag '--compact-threshold' needs --live\n");
    return 2;
  }
  std::optional<LiveCorpusOptions> live;
  if (args.Has("live")) {
    live.emplace();
    live->compact_delta_threshold = compact_threshold;
  }
  const char* target_path = args.Get("target");
  const char* index_path = args.Get("index");
  if ((target_path == nullptr) == (index_path == nullptr)) {
    std::fprintf(stderr,
                 "genlink serve: pass exactly one of --target or --index\n"
                 "(run 'genlink serve --help' for usage)\n");
    return 2;
  }

  // The corpus behind the daemon: an in-memory dataset (parsed here)
  // or a mapped v2 artifact (zero-copy; the shared_ptr keeps the
  // mapping alive for the daemon's lifetime). ServingState is not
  // movable (it owns mutexes), so it is emplaced once the corpus is
  // known.
  std::optional<Dataset> target;
  std::optional<ServingState> state;
  if (target_path != nullptr) {
    auto loaded = LoadDataset(target_path, args.Get("id-column", "id"), "target");
    if (!loaded.ok()) {
      return FailFlagFile("serve", "target", target_path, loaded.status());
    }
    target.emplace(std::move(*loaded));
    state.emplace(*target, threads, live);
  } else {
    auto loaded = MappedCorpus::Load(index_path);
    if (!loaded.ok()) {
      return FailFlagFile("serve", "index", index_path, loaded.status());
    }
    state.emplace(std::move(*loaded), threads, live);
  }

  const char* artifact_path = args.Get("artifact");
  // The initial deploy takes the same failure-checked path as a live
  // reload; at startup a bad artifact is fatal (there is nothing older
  // to keep serving).
  Status deployed = state->ReloadFromFile(artifact_path);
  if (!deployed.ok()) {
    return FailFlagFile("serve", "artifact", artifact_path, deployed);
  }

  ServeOptions options;
  options.port = static_cast<uint16_t>(port);
  options.num_workers = workers;
  options.max_queue = max_queue;
  options.request_deadline = std::chrono::milliseconds(request_deadline_ms);
  options.read_timeout = std::chrono::milliseconds(read_timeout_ms);
  options.drain_deadline = std::chrono::milliseconds(drain_deadline_ms);
  options.csv.id_column = args.Get("id-column", "id");

  ServeDaemon daemon(*state, options);
  Status started = daemon.Start();
  if (!started.ok()) return Fail(started);

  if (const char* port_file = args.Get("port-file")) {
    Status status =
        WriteStringToFile(port_file, std::to_string(daemon.port()) + "\n");
    if (!status.ok()) {
      return FailFlagFile("serve", "port-file", port_file, status);
    }
  }
  // SIGINT/SIGTERM reach the daemon through its self-pipe (the handler
  // may only write() a byte) and begin the graceful drain.
  g_serve_shutdown_fd.store(daemon.shutdown_fd(), std::memory_order_relaxed);
  std::fprintf(stderr,
               "serving on 127.0.0.1:%u (%zu workers, queue %zu, "
               "deadline %zums); SIGTERM drains\n",
               daemon.port(), workers, max_queue, request_deadline_ms);
  std::fflush(stderr);

  const bool clean = daemon.WaitForDrain();
  g_serve_shutdown_fd.store(-1, std::memory_order_relaxed);
  std::fprintf(stderr, "drained %s\n%s", clean ? "cleanly" : "WITH ABORTS",
               daemon.RenderVarz().c_str());
  // A drained daemon exits 0: SIGTERM is the *intended* way to stop
  // serving, not an error (docs/SERVING.md).
  return clean ? 0 : 1;
}

int RunApply(const Args& args) {
  const char* artifact_path = args.Get("artifact");
  const char* rule_path = args.Get("rule");
  if ((artifact_path == nullptr) == (rule_path == nullptr)) {
    std::fprintf(stderr,
                 "genlink apply: pass exactly one of --artifact or --rule\n"
                 "(run 'genlink apply --help' for usage)\n");
    return 2;
  }
  const char* target_path = args.Get("target");
  const char* index_path = args.Get("index");
  if ((target_path == nullptr) == (index_path == nullptr)) {
    std::fprintf(stderr,
                 "genlink apply: pass exactly one of --target or --index\n"
                 "(run 'genlink apply --help' for usage)\n");
    return 2;
  }
  size_t batch_size = 256;
  size_t compact_every = 0;
  size_t compact_threshold = 0;
  size_t threads_override = 0;
  double threshold_override = 0.0;
  if (!FlagAsCount(args, "apply", "batch-size", 1, &batch_size) ||
      !FlagAsCount(args, "apply", "compact-every", 0, &compact_every) ||
      !FlagAsCount(args, "apply", "compact-threshold", 0, &compact_threshold) ||
      !FlagAsCount(args, "apply", "threads", 0, &threads_override) ||
      !FlagAsDouble(args, "apply", "threshold", &threshold_override)) {
    return 2;
  }
  if (index_path != nullptr &&
      (args.Has("verify") || args.Has("out-index") ||
       args.Has("compact-every") || args.Has("compact-threshold"))) {
    // A mapped artifact stores transformed value spans, not raw
    // values, so the logical corpus cannot be rematerialized from it
    // (live/live_corpus.h).
    std::fprintf(stderr,
                 "genlink apply: --verify, --out-index and compaction need "
                 "--target (a mapped --index base cannot compact)\n");
    return 2;
  }

  std::optional<Dataset> target;
  std::shared_ptr<const MappedCorpus> mapped;
  if (target_path != nullptr) {
    auto loaded = LoadDataset(target_path, args.Get("id-column", "id"), "target");
    if (!loaded.ok()) {
      return FailFlagFile("apply", "target", target_path, loaded.status());
    }
    target.emplace(std::move(*loaded));
  } else {
    auto loaded = MappedCorpus::Load(index_path);
    if (!loaded.ok()) {
      return FailFlagFile("apply", "index", index_path, loaded.status());
    }
    mapped = std::move(*loaded);
  }

  RuleArtifact artifact;
  if (artifact_path != nullptr) {
    auto loaded = LoadArtifact(artifact_path);
    if (!loaded.ok()) {
      return FailFlagFile("apply", "artifact", artifact_path, loaded.status());
    }
    artifact = std::move(*loaded);
  } else {
    auto rule = LoadRule(rule_path);
    if (!rule.ok()) {
      return FailFlagFile("apply", "rule", rule_path, rule.status());
    }
    artifact.rule = std::move(*rule);
  }
  if (args.Has("best-match")) artifact.options.best_match_only = true;
  if (args.Has("threshold")) artifact.options.threshold = threshold_override;
  if (args.Has("threads")) artifact.options.num_threads = threads_override;

  LiveCorpusOptions live_options;
  live_options.compact_delta_threshold = compact_threshold;
  Result<std::unique_ptr<LiveCorpus>> live =
      mapped != nullptr
          ? LiveCorpus::Create(mapped, artifact.rule, artifact.options,
                               live_options)
          : LiveCorpus::Create(*target, artifact.rule, artifact.options,
                               live_options);
  if (!live.ok()) return Fail(live.status());

  auto content = ReadFileToString(args.Get("deltas"));
  if (!content.ok()) {
    return FailFlagFile("apply", "deltas", args.Get("deltas"),
                        content.status());
  }
  Result<DeltaBatch> batch = ReadDeltaCsv(*content);
  if (!batch.ok()) {
    return FailFlagFile("apply", "deltas", args.Get("deltas"), batch.status());
  }

  // The stream applies in --batch-size chunks, each publishing one
  // epoch snapshot; SIGINT/SIGTERM stop at the next batch boundary
  // (batches are atomic — nothing is ever half-applied).
  const std::span<const LiveOp> ops(batch->ops);
  const auto start = std::chrono::steady_clock::now();
  size_t applied = 0;
  size_t batches = 0;
  for (size_t offset = 0; offset < ops.size(); offset += batch_size) {
    if (g_interrupted.load(std::memory_order_relaxed)) break;
    const size_t count = std::min(batch_size, ops.size() - offset);
    Status status =
        (*live)->ApplyBatch(ops.subspan(offset, count), batch->schema);
    if (!status.ok()) {
      return FailFlagFile("apply", "deltas", args.Get("deltas"), status);
    }
    applied += count;
    ++batches;
    if (compact_every > 0 && batches % compact_every == 0) {
      Status compacted = (*live)->Compact();
      if (!compacted.ok()) return Fail(compacted);
    }
  }
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  const LiveCorpusStats stats = (*live)->stats();
  std::fprintf(stderr,
               "applied %zu/%zu ops in %zu batches (%.3fs, %.0f ops/s): "
               "epoch %llu, %zu live entities, %llu upserts, %llu removes, "
               "%llu compactions\n",
               applied, ops.size(), batches, seconds,
               seconds > 0.0 ? applied / seconds : 0.0,
               static_cast<unsigned long long>(stats.epoch),
               stats.live_entities,
               static_cast<unsigned long long>(stats.upserts),
               static_cast<unsigned long long>(stats.removes),
               static_cast<unsigned long long>(stats.compactions));
  if (g_interrupted.load(std::memory_order_relaxed)) {
    std::fprintf(stderr, "interrupted by %s; applied batches are committed\n",
                 SignalName());
    return InterruptExitCode();
  }

  // apply --verify: the streamed index must answer bit-identically to
  // a cold rebuild over the final logical corpus — the LiveCorpus
  // correctness gate (tests/live_corpus_test.cc), checked here over
  // real files.
  if (args.Has("verify")) {
    Result<Dataset> logical = (*live)->MaterializeLogical();
    if (!logical.ok()) return Fail(logical.status());
    const std::shared_ptr<const MatcherIndex> fresh =
        MatcherIndex::Build(*logical, artifact.rule, artifact.options);
    const std::vector<GeneratedLink> got =
        (*live)->MatchBatch(logical->entities(), logical->schema());
    const std::vector<GeneratedLink> want =
        fresh->MatchBatch(logical->entities(), logical->schema());
    bool identical = got.size() == want.size();
    for (size_t i = 0; identical && i < got.size(); ++i) {
      identical = got[i].id_a == want[i].id_a &&
                  got[i].id_b == want[i].id_b &&
                  got[i].score == want[i].score;
    }
    if (!identical) {
      std::fprintf(stderr,
                   "VERIFY FAILED: streamed index diverges from a cold "
                   "rebuild (%zu vs %zu links)\n",
                   got.size(), want.size());
      return 1;
    }
    std::fprintf(stderr,
                 "verify: OK — %zu links bit-identical to a cold rebuild "
                 "of %zu entities\n",
                 got.size(), logical->size());
  }

  if (const char* out_index = args.Get("out-index")) {
    Status persisted = (*live)->CompactTo(out_index);
    if (!persisted.ok()) {
      return FailFlagFile("apply", "out-index", out_index, persisted);
    }
    std::fprintf(stderr, "final corpus persisted to %s (epoch %llu)\n",
                 out_index,
                 static_cast<unsigned long long>((*live)->epoch()));
  }
  return 0;
}

int RunGen(const Args& args) {
  SyntheticConfig config;
  config.num_threads = 0;  // generation is parallel-safe; use all cores
  size_t seed_value = config.seed;
  SyntheticDeltaConfig delta_config;
  size_t delta_seed = delta_config.seed;
  if (!FlagAsCount(args, "gen", "entities", 1, &config.num_entities) ||
      !FlagAsCount(args, "gen", "seed", 0, &seed_value) ||
      !FlagAsCount(args, "gen", "threads", 0, &config.num_threads) ||
      !FlagAsDouble(args, "gen", "duplicate-rate", &config.duplicate_rate) ||
      !FlagAsDouble(args, "gen", "confusable-rate", &config.confusable_rate) ||
      !FlagAsDouble(args, "gen", "typo-rate", &config.typo_probability) ||
      !FlagAsDouble(args, "gen", "missing-rate",
                    &config.missing_field_probability) ||
      !FlagAsCount(args, "gen", "deltas", 0, &delta_config.num_deltas) ||
      !FlagAsCount(args, "gen", "delta-seed", 0, &delta_seed) ||
      !FlagAsDouble(args, "gen", "delta-delete-rate",
                    &delta_config.delete_rate) ||
      !FlagAsDouble(args, "gen", "delta-new-rate",
                    &delta_config.new_entity_rate)) {
    return 2;
  }
  config.seed = seed_value;
  delta_config.seed = delta_seed;
  if (args.Has("deltas") != args.Has("out-deltas")) {
    std::fprintf(stderr,
                 "genlink gen: --deltas and --out-deltas go together\n"
                 "(run 'genlink gen --help' for usage)\n");
    return 2;
  }

  const MatchingTask task = GenerateSynthetic(config);

  // Stream one CSV row per entity through a chunked buffer, so a 1M+
  // corpus never materializes as one giant string.
  const auto write_dataset = [](const Dataset& dataset,
                                const char* path) -> Status {
    std::FILE* out = std::fopen(path, "wb");
    if (out == nullptr) {
      return Status::IoError(std::string("cannot open file: ") + path);
    }
    const Schema& schema = dataset.schema();
    std::vector<std::string> row;
    row.push_back("id");
    for (const std::string& name : schema.property_names()) row.push_back(name);
    std::string buffer = WriteCsv({row});
    for (const Entity& entity : dataset.entities()) {
      // SIGINT/SIGTERM: stop between rows; whatever is buffered is
      // flushed below so the file ends on a complete CSV record.
      if (g_interrupted.load(std::memory_order_relaxed)) break;
      row.clear();
      row.push_back(entity.id());
      for (PropertyId p = 0; p < schema.NumProperties(); ++p) {
        const ValueSet& values = entity.Values(p);
        row.push_back(values.empty() ? std::string() : values.front());
      }
      buffer += WriteCsv({row});
      if (buffer.size() >= 1 << 20) {
        std::fwrite(buffer.data(), 1, buffer.size(), out);
        buffer.clear();
      }
    }
    std::fwrite(buffer.data(), 1, buffer.size(), out);
    if (std::fclose(out) != 0) {
      return Status::IoError(std::string("write failed: ") + path);
    }
    return Status::Ok();
  };

  Status status = write_dataset(task.a, args.Get("out-source"));
  if (!status.ok()) {
    return FailFlagFile("gen", "out-source", args.Get("out-source"), status);
  }
  status = write_dataset(task.b, args.Get("out-target"));
  if (!status.ok()) {
    return FailFlagFile("gen", "out-target", args.Get("out-target"), status);
  }
  status = WriteStringToFile(args.Get("out-links"), WriteLinksCsv(task.links));
  if (!status.ok()) {
    return FailFlagFile("gen", "out-links", args.Get("out-links"), status);
  }
  if (g_interrupted.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "interrupted by %s; partial datasets were flushed (links "
                 "file is complete)\n",
                 SignalName());
    return InterruptExitCode();
  }

  std::fprintf(stderr,
               "generated %zu + %zu entities, %zu positive / %zu negative "
               "links (seed %llu, fingerprint %016llx)\n",
               task.a.size(), task.b.size(), task.links.positives().size(),
               task.links.negatives().size(),
               static_cast<unsigned long long>(config.seed),
               static_cast<unsigned long long>(FingerprintTask(task)));

  // gen --deltas: a deterministic update/delete stream against the
  // target side, written in the delta CSV format `genlink apply
  // --deltas` consumes.
  if (delta_config.num_deltas > 0) {
    delta_config.base = config;
    const SyntheticDeltas deltas = GenerateSyntheticDeltas(delta_config);
    std::vector<LiveOp> ops;
    ops.reserve(deltas.ops.size());
    for (const SyntheticDelta& delta : deltas.ops) {
      LiveOp op;
      if (delta.remove) {
        op.kind = LiveOp::Kind::kRemove;
        op.id = delta.entity.id();
      } else {
        op.entity = delta.entity;
      }
      ops.push_back(std::move(op));
    }
    status = WriteStringToFile(args.Get("out-deltas"),
                               WriteDeltaCsv(deltas.schema, ops));
    if (!status.ok()) {
      return FailFlagFile("gen", "out-deltas", args.Get("out-deltas"), status);
    }
    std::fprintf(stderr,
                 "generated %zu deltas (seed %llu, fingerprint %016llx)\n",
                 deltas.ops.size(),
                 static_cast<unsigned long long>(delta_config.seed),
                 static_cast<unsigned long long>(FingerprintDeltas(deltas)));
  }
  return 0;
}

int RunEval(const Args& args) {
  auto a = LoadDataset(args.Get("source"), args.Get("id-column", "id"), "source");
  if (!a.ok()) {
    return FailFlagFile("eval", "source", args.Get("source"), a.status());
  }
  auto b = LoadDataset(args.Get("target"), args.Get("id-column", "id"), "target");
  if (!b.ok()) {
    return FailFlagFile("eval", "target", args.Get("target"), b.status());
  }
  auto rule = LoadRule(args.Get("rule"));
  if (!rule.ok()) {
    return FailFlagFile("eval", "rule", args.Get("rule"), rule.status());
  }
  auto links = LoadLinks(args.Get("links"));
  if (!links.ok()) {
    return FailFlagFile("eval", "links", args.Get("links"), links.status());
  }

  auto generated = GenerateLinks(*rule, *a, *b);
  LinkSetMetrics metrics = EvaluateLinkSet(generated, *links);
  std::printf("generated: %zu  reference: %zu  correct: %zu\n",
              metrics.generated, metrics.reference, metrics.correct);
  std::printf("precision: %.4f  recall: %.4f  F1: %.4f\n", metrics.precision,
              metrics.recall, metrics.f_measure);

  std::printf("\nthreshold sweep:\n");
  for (const auto& point : PrecisionRecallSweep(generated, *links)) {
    std::printf("  t=%.2f  precision %.4f  recall %.4f  F1 %.4f\n",
                point.threshold, point.metrics.precision, point.metrics.recall,
                point.metrics.f_measure);
  }
  return 0;
}

int Main(int argc, char** argv) {
  if (argc < 2) {
    PrintTopHelp(stderr);
    return 2;
  }
  const std::string_view command = argv[1];
  if (command == "--version" || command == "version") {
    std::printf("genlink %s\n", GENLINK_VERSION);
    return 0;
  }
  if (command == "--help" || command == "-h" || command == "help") {
    PrintTopHelp(stdout);
    return 0;
  }
  const CommandSpec* spec = FindCommand(command);
  if (spec == nullptr) {
    std::fprintf(stderr, "genlink: unknown command '%s'\n\n",
                 std::string(command).c_str());
    PrintTopHelp(stderr);
    return 2;
  }
  Args args;
  args.command = spec->name;
  const int parse_exit = ParseFlags(*spec, argc, argv, args);
  if (parse_exit >= 0) return parse_exit;
  InstallSignalHandlers();
  if (command == "learn") return RunLearn(args);
  if (command == "match") return RunMatch(args);
  if (command == "index") return RunIndex(args);
  if (command == "query") return RunQuery(args);
  if (command == "serve") return RunServe(args);
  if (command == "apply") return RunApply(args);
  if (command == "gen") return RunGen(args);
  return RunEval(args);
}

}  // namespace
}  // namespace genlink

int main(int argc, char** argv) { return genlink::Main(argc, argv); }
