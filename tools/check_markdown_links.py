#!/usr/bin/env python3
"""Checks that relative markdown links resolve to real files.

Usage: check_markdown_links.py FILE_OR_DIR [FILE_OR_DIR ...]

For every markdown file given (directories are scanned recursively for
*.md), every inline link or image `[text](target)` is checked:

  * http(s)/mailto targets are skipped (no network access in CI);
  * pure-anchor targets (`#section`) are checked against the headings
    of the same file;
  * relative targets must exist on disk, resolved against the file's
    directory; an optional `#anchor` is checked against the target's
    headings when the target is itself markdown.

Exits 0 when every link resolves, 1 otherwise (listing the failures).
Uses only the standard library.
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
INLINE_CODE_RE = re.compile(r"`[^`\n]*`")


def github_anchor(heading):
    """GitHub's heading -> anchor slug (approximation: good enough for
    ASCII docs)."""
    anchor = heading.strip().lower()
    # Drop inline code markers and punctuation, keep word chars,
    # spaces and hyphens.
    anchor = re.sub(r"[`*_]", "", anchor)
    anchor = re.sub(r"[^\w\- ]", "", anchor)
    return anchor.replace(" ", "-")


def anchors_of(path):
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        return set()
    text = CODE_FENCE_RE.sub("", text)
    return {github_anchor(m.group(1)) for m in HEADING_RE.finditer(text)}


def collect_markdown_files(args):
    files = []
    for arg in args:
        if os.path.isdir(arg):
            for root, _dirs, names in os.walk(arg):
                files.extend(
                    os.path.join(root, n) for n in names if n.endswith(".md"))
        elif arg.endswith(".md"):
            files.append(arg)
        else:
            print(f"warning: skipping non-markdown argument {arg}",
                  file=sys.stderr)
    return sorted(set(files))


def check_file(path):
    failures = []
    with open(path, encoding="utf-8") as f:
        text = f.read()
    text = CODE_FENCE_RE.sub("", text)
    text = INLINE_CODE_RE.sub("", text)
    base = os.path.dirname(os.path.abspath(path))
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        if target.startswith("#"):
            if github_anchor(target[1:]) not in anchors_of(path):
                failures.append(f"{path}: missing anchor {target}")
            continue
        file_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(os.path.join(base, file_part))
        if not os.path.exists(resolved):
            failures.append(f"{path}: broken link {target}")
            continue
        if anchor and resolved.endswith(".md"):
            if github_anchor(anchor) not in anchors_of(resolved):
                failures.append(f"{path}: missing anchor {target}")
    return failures


def main(argv):
    if len(argv) < 2:
        print(__doc__, file=sys.stderr)
        return 2
    files = collect_markdown_files(argv[1:])
    if not files:
        print("error: no markdown files found", file=sys.stderr)
        return 2
    failures = []
    for path in files:
        failures.extend(check_file(path))
    for failure in failures:
        print(failure, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{'OK' if not failures else f'{len(failures)} broken links'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
