#!/usr/bin/env python3
"""Bench regression checker over BENCH_*.json records.

Compares the per-bench throughput metric of freshly produced bench JSON
files against checked-in baselines (bench/baselines/BENCH_<name>.json)
and fails when a bench drops below --min-ratio (default 0.75, i.e. a
>25% regression) of its baseline value.

Understands both JSON shapes the repo emits:
  * Google Benchmark output (micro benches): {"benchmarks": [{"name":
    ..., "items_per_second": ...}]} — the metric is a top-level field of
    each benchmark entry.
  * bench/harness.h records (table benches): {"records": [{"dataset":
    ..., "system": ..., "extra": {...}}]} — the metric is looked up in
    "extra", and entries are keyed "<dataset>/<system>".

Benches present in only one of the two files are reported but do not
fail the check (benches come and go); a missing baseline FILE is an
error so CI cannot silently skip a whole suite.

Usage:
  tools/compare_bench_json.py --baseline-dir bench/baselines \
      [--metric items_per_second] [--min-ratio 0.75] current.json...

Absolute throughput is machine-dependent: compare runs from the same
machine class (the seeded baselines come from the CI runner size), or
track the machine-independent ratio metrics (speedup_vs_operator_tree,
speedup_vs_t1) which transfer across hosts.
"""

import argparse
import json
import os
import sys


def extract_metrics(doc, metric):
    """Returns {bench_key: metric_value} for either JSON shape."""
    out = {}
    if isinstance(doc.get("benchmarks"), list):  # Google Benchmark format
        for entry in doc["benchmarks"]:
            name = entry.get("name")
            if name is None or entry.get("run_type") == "aggregate":
                continue
            value = entry.get(metric)
            if isinstance(value, (int, float)):
                out[name] = float(value)
    if isinstance(doc.get("records"), list):  # bench/harness.h format
        for record in doc["records"]:
            key = "%s/%s" % (record.get("dataset", "?"), record.get("system", "?"))
            value = (record.get("extra") or {}).get(metric)
            if isinstance(value, (int, float)):
                out[key] = float(value)
    return out


def load(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", nargs="+", help="freshly produced BENCH_*.json files")
    parser.add_argument("--baseline-dir", default="bench/baselines",
                        help="directory holding the checked-in baselines")
    parser.add_argument("--metric", default="items_per_second",
                        help="metric field to compare (top-level for Google "
                             "Benchmark JSON, extra.<metric> for harness JSON)")
    parser.add_argument("--min-ratio", type=float, default=0.75,
                        help="fail when current/baseline falls below this")
    args = parser.parse_args()

    failures = 0
    compared = 0
    for current_path in args.current:
        baseline_path = os.path.join(args.baseline_dir,
                                     os.path.basename(current_path))
        if not os.path.exists(baseline_path):
            print("ERROR: no baseline %s for %s" % (baseline_path, current_path))
            failures += 1
            continue
        current = extract_metrics(load(current_path), args.metric)
        baseline = extract_metrics(load(baseline_path), args.metric)
        if not baseline:
            print("note: baseline %s carries no '%s' values; nothing to check"
                  % (baseline_path, args.metric))
            continue

        print("== %s (metric: %s, min ratio %.2f)"
              % (os.path.basename(current_path), args.metric, args.min_ratio))
        for key in sorted(baseline):
            if key not in current:
                print("   %-48s baseline-only (skipped)" % key)
                continue
            base, cur = baseline[key], current[key]
            if base <= 0:
                continue
            ratio = cur / base
            compared += 1
            verdict = "ok"
            if ratio < args.min_ratio:
                verdict = "REGRESSION"
                failures += 1
            print("   %-48s %12.1f -> %12.1f  (%.2fx) %s"
                  % (key, base, cur, ratio, verdict))
        for key in sorted(set(current) - set(baseline)):
            print("   %-48s new bench (no baseline yet)" % key)

    if failures:
        print("FAIL: %d regression(s)/error(s) across %d compared benches"
              % (failures, compared))
        return 1
    print("OK: %d benches within %.0f%% of baseline"
          % (compared, 100 * args.min_ratio))
    return 0


if __name__ == "__main__":
    sys.exit(main())
