#!/usr/bin/env python3
"""Self-tests for tools/genlink_lint.py (plain stdlib unittest: the
build container and CI both have python3 but not pytest).

Each test writes a small C++ snippet into a temp tree laid out like the
real repo (src/<dir>/<file>) and asserts on the diagnostics the linter
returns. Registered with ctest under the `lint` label.
"""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import genlink_lint  # noqa: E402


class LintHarness(unittest.TestCase):
    def setUp(self):
        self._tmp = tempfile.TemporaryDirectory()
        self.root = self._tmp.name
        self._old_cwd = os.getcwd()
        os.chdir(self.root)

    def tearDown(self):
        os.chdir(self._old_cwd)
        self._tmp.cleanup()

    def write(self, rel_path, text):
        full = os.path.join(self.root, rel_path)
        os.makedirs(os.path.dirname(full), exist_ok=True)
        with open(full, "w") as f:
            f.write(text)
        return full

    def lint(self, rel_path, text):
        full = self.write(rel_path, text)
        result = genlink_lint.LintResult()
        genlink_lint.lint_file(full, rel_path, result)
        return result

    def rules(self, result):
        return [d.rule for d in result.diagnostics]


class RandomnessRuleTest(LintHarness):
    def test_flags_rand_and_random_device(self):
        r = self.lint("src/gp/x.cc", """\
int a = rand();
std::random_device rd;
""")
        self.assertEqual(self.rules(r), ["randomness", "randomness"])

    def test_flags_wall_clock_sources(self):
        r = self.lint("src/eval/x.cc", """\
auto t0 = std::chrono::system_clock::now();
time_t t = time(NULL);
gettimeofday(&tv, nullptr);
""")
        self.assertEqual(self.rules(r), ["randomness"] * 3)

    def test_steady_clock_is_allowed(self):
        r = self.lint("src/eval/x.cc",
                      "auto t0 = std::chrono::steady_clock::now();\n")
        self.assertEqual(self.rules(r), [])

    def test_common_random_is_exempt(self):
        r = self.lint("src/common/random.cc",
                      "std::random_device rd;  // seeding policy lives here\n")
        self.assertEqual(self.rules(r), [])

    def test_identifiers_containing_time_are_not_flagged(self):
        r = self.lint("src/eval/x.cc", """\
double build_time(int n);
double t = build_time(3);
runtime(x);
""")
        self.assertEqual(self.rules(r), [])

    def test_string_literals_are_not_flagged(self):
        r = self.lint("src/eval/x.cc",
                      'const char* help = "seeded, never rand() or time(NULL)";\n')
        self.assertEqual(self.rules(r), [])


class UnorderedIterationRuleTest(LintHarness):
    SNIPPET = """\
std::unordered_map<std::string, int> counts;
for (const auto& [k, v] : counts) out.push_back(k);
"""

    def test_flags_range_for_over_unordered_map(self):
        r = self.lint("src/io/x.cc", self.SNIPPET)
        self.assertEqual(self.rules(r), ["unordered-iteration"])
        self.assertEqual(r.diagnostics[0].line, 2)

    def test_ordered_waiver_with_reason_suppresses(self):
        r = self.lint("src/io/x.cc", """\
std::unordered_map<std::string, int> counts;
// lint:ordered -- pure counting, order-insensitive
for (const auto& [k, v] : counts) total += v;
""")
        self.assertEqual(self.rules(r), [])
        self.assertEqual(len(r.waivers), 1)
        self.assertEqual(r.waivers[0].rule, "unordered-iteration")

    def test_waiver_explanation_may_span_comment_lines(self):
        r = self.lint("src/io/x.cc", """\
std::unordered_map<std::string, int> counts;
// lint:ordered -- pure counting, order-insensitive; and what is more,
// this continuation line does not break the waiver's coverage.
for (const auto& [k, v] : counts) total += v;
""")
        self.assertEqual(self.rules(r), [])

    def test_waiver_without_reason_is_an_error_and_does_not_suppress(self):
        r = self.lint("src/io/x.cc", """\
std::unordered_map<std::string, int> counts;
// lint:ordered
for (const auto& [k, v] : counts) out.push_back(k);
""")
        self.assertEqual(sorted(self.rules(r)),
                         ["unordered-iteration", "waiver-syntax"])

    def test_vector_iteration_not_flagged(self):
        r = self.lint("src/io/x.cc", """\
std::vector<int> counts;
for (int v : counts) total += v;
""")
        self.assertEqual(self.rules(r), [])

    def test_function_signature_does_not_leak_parameter_names(self):
        # `values` below is a vector parameter of a function RETURNING an
        # unordered set; iterating it must not be flagged.
        r = self.lint("src/distance/x.cc", """\
std::unordered_set<std::string> Distinct(const std::vector<std::string>& values) {
  std::unordered_set<std::string> set;
  for (const auto& v : values) set.insert(v);
  return set;
}
""")
        self.assertEqual(self.rules(r), [])

    def test_comma_separated_declarators_all_tracked(self):
        r = self.lint("src/io/x.cc", """\
std::unordered_map<std::string, int> ca, cb;
for (const auto& [k, v] : cb) out.push_back(k);
""")
        self.assertEqual(self.rules(r), ["unordered-iteration"])


class PointerSortRuleTest(LintHarness):
    def test_flags_pointer_value_comparator(self):
        r = self.lint("src/gp/x.cc", """\
std::sort(ops.begin(), ops.end(),
          [](const Operator* a, const Operator* b) { return a < b; });
""")
        self.assertEqual(self.rules(r), ["pointer-sort"])

    def test_comparing_through_pointees_is_fine(self):
        r = self.lint("src/gp/x.cc", """\
std::sort(ops.begin(), ops.end(),
          [](const Operator* a, const Operator* b) { return a->id < b->id; });
""")
        self.assertEqual(self.rules(r), [])

    def test_value_comparator_is_fine(self):
        r = self.lint("src/gp/x.cc", """\
std::sort(v.begin(), v.end(), [](const Link& x, const Link& y) {
  return x.score > y.score;
});
""")
        self.assertEqual(self.rules(r), [])

    def test_min_element_also_checked(self):
        r = self.lint("src/gp/x.cc", """\
auto it = std::min_element(ptrs.begin(), ptrs.end(),
                           [](const T* x, const T* y) { return x < y; });
""")
        self.assertEqual(self.rules(r), ["pointer-sort"])


class RawMutexRuleTest(LintHarness):
    def test_flags_std_mutex_outside_common(self):
        r = self.lint("src/api/x.h", "  std::mutex mutex_;\n")
        self.assertEqual(self.rules(r), ["raw-mutex"])

    def test_flags_shared_mutex_and_condition_variable(self):
        r = self.lint("src/api/x.h", """\
  std::shared_mutex rw_;
  std::condition_variable cv_;
""")
        self.assertEqual(self.rules(r), ["raw-mutex", "raw-mutex"])

    def test_common_is_exempt(self):
        r = self.lint("src/common/mutex.h", "  std::mutex mutex_;\n")
        self.assertEqual(self.rules(r), [])

    def test_annotated_wrappers_are_fine(self):
        r = self.lint("src/api/x.h", """\
  Mutex mutex_;
  WriterPriorityMutex rw_;
""")
        self.assertEqual(self.rules(r), [])

    def test_allow_waiver_suppresses(self):
        r = self.lint("src/api/x.h",
                      "  std::mutex m_;  // lint:allow(raw-mutex) -- FFI type must match C ABI\n")
        self.assertEqual(self.rules(r), [])


class FloatAccumRuleTest(LintHarness):
    SNIPPET = """\
double Mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) {
    sum += x;
  }
  return sum / xs.size();
}
"""

    def test_flags_in_gated_dirs(self):
        for d in ("eval", "gp", "api"):
            r = self.lint(f"src/{d}/x.cc", self.SNIPPET)
            self.assertEqual(self.rules(r), ["float-accum"], d)

    def test_not_flagged_outside_gated_dirs(self):
        r = self.lint("src/io/x.cc", self.SNIPPET)
        self.assertEqual(self.rules(r), [])

    def test_integer_accumulation_is_fine(self):
        r = self.lint("src/eval/x.cc", """\
size_t total = 0;
for (const auto& island : islands) {
  total += island.size();
}
""")
        self.assertEqual(self.rules(r), [])

    def test_accumulation_outside_loop_is_fine(self):
        r = self.lint("src/eval/x.cc", """\
double sum = 0.0;
sum += first;
sum += second;
""")
        self.assertEqual(self.rules(r), [])

    def test_waiver_with_reason_suppresses(self):
        r = self.lint("src/eval/x.cc", """\
double sum = 0.0;
for (double x : xs) {
  // lint:allow(float-accum) -- serial loop, vector index order
  sum += x;
}
""")
        self.assertEqual(self.rules(r), [])
        self.assertEqual(len(r.waivers), 1)


class WaiverAuditTest(LintHarness):
    def test_unknown_rule_in_waiver_is_an_error(self):
        r = self.lint("src/io/x.cc",
                      "// lint:allow(made-up-rule) -- because\nint x;\n")
        self.assertEqual(self.rules(r), ["waiver-syntax"])

    def test_list_waivers_exit_code_and_output(self):
        self.write("src/eval/x.cc", """\
double sum = 0.0;
for (double x : xs) {
  sum += x;  // lint:allow(float-accum) -- fixed order
}
""")
        import contextlib
        import io
        buf = io.StringIO()
        with contextlib.redirect_stdout(buf):
            code = genlink_lint.main(["--list-waivers", "src"])
        self.assertEqual(code, 0)
        self.assertIn("fixed order", buf.getvalue())
        self.assertIn("1 waiver(s)", buf.getvalue())


class CliTest(LintHarness):
    def test_exit_codes(self):
        import contextlib
        import io
        self.write("src/api/clean.cc", "int f() { return 1; }\n")
        with contextlib.redirect_stdout(io.StringIO()):
            self.assertEqual(genlink_lint.main(["src"]), 0)
        self.write("src/api/dirty.cc", "std::mutex m_;\n")
        with contextlib.redirect_stdout(io.StringIO()), \
             contextlib.redirect_stderr(io.StringIO()):
            self.assertEqual(genlink_lint.main(["src"]), 1)
            self.assertEqual(genlink_lint.main(["no/such/path"]), 2)

    def test_diagnostic_format_is_file_line_rule(self):
        r = self.lint("src/api/x.cc", "std::mutex m_;\n")
        self.assertRegex(str(r.diagnostics[0]),
                         r"^src/api/x\.cc:1: \[raw-mutex\] ")


if __name__ == "__main__":
    unittest.main()
