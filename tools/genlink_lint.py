#!/usr/bin/env python3
"""genlink_lint: the repo's determinism & concurrency invariant linter.

The GP learner's contract (ROADMAP, docs/DETERMINISM.md) is that every
run is bit-identical for a given seed, at any thread count. Most of the
ways to break that are not compile errors — an unordered_map iteration
feeding output, a wall-clock call, a pointer-valued sort key — so this
linter rejects the syntactic forms that historically cause them.

Rules (all diagnostics are `file:line: [rule] message`):

  randomness           rand()/srand()/std::random_device, time()/
                       gettimeofday/localtime/system_clock — i.e. any
                       entropy or wall-clock source — outside
                       src/common/random.*. Seeded streams come from
                       common/random.h; durations use steady_clock
                       (allowed everywhere, it never feeds results).
  unordered-iteration  range-for over a container declared as
                       std::unordered_map/std::unordered_set in the
                       same file. Hash-order iteration feeding output
                       or accumulation is run-to-run nondeterministic
                       (libstdc++ order is stable today, but it is an
                       implementation detail and differs under
                       sanitizers/other stdlibs). Waive with
                       `// lint:ordered -- <reason>` when the loop is
                       provably order-insensitive (pure counting, or
                       results re-sorted afterwards).
  pointer-sort         sort-family comparator lambdas taking pointer
                       parameters and comparing them with </> directly:
                       pointer values are allocation-order, not data.
  raw-mutex            std::mutex / std::shared_mutex /
                       std::condition_variable (& friends) outside
                       src/common/: they carry no thread-safety
                       capability annotations on libstdc++, so guarded
                       state becomes invisible to clang
                       -Wthread-safety. Use the annotated wrappers in
                       common/mutex.h.
  float-accum          `x += ...` on a float/double inside a loop, in
                       the determinism-gated directories (src/eval,
                       src/gp, src/api). Float addition is
                       non-associative; an accumulation whose order
                       depends on scheduling breaks bit-identity.
                       Waive when the loop order is fixed (serial
                       phase, deterministic container).

Waivers — every one requires a reason:

  // lint:allow(<rule>) -- <reason>     on the flagged line or the line
                                        directly above it
  // lint:ordered -- <reason>           sugar for
                                        lint:allow(unordered-iteration)

`--list-waivers` prints every waiver in scope (file:line, rule,
reason) for audit, and exits 0.

Exit codes: 0 clean, 1 violations found, 2 usage/IO error.

Self-tests: tools/genlink_lint_test.py (plain stdlib unittest; also
registered with ctest under the `lint` label).
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from dataclasses import dataclass, field

RULES = (
    "randomness",
    "unordered-iteration",
    "pointer-sort",
    "raw-mutex",
    "float-accum",
)

SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp", ".cxx")

# Directories (relative to the scan root, forward slashes) where
# float-accum applies: the layers whose numbers must be bit-identical.
DETERMINISM_GATED_DIRS = ("eval", "gp", "api")

# randomness is not enforced inside the seeded-randomness module itself
# (it is the one place allowed to own entropy policy) …
RANDOMNESS_EXEMPT = re.compile(r"(^|/)common/random\.(h|cc)$")
# … and raw-mutex is not enforced inside common/, where the annotated
# wrappers are implemented in terms of the std primitives.
RAW_MUTEX_EXEMPT = re.compile(r"(^|/)common/")

WAIVER_RE = re.compile(
    r"//\s*lint:(?:allow\((?P<rule>[a-z-]+)\)|(?P<ordered>ordered))"
    r"(?P<rest>.*)$"
)
REASON_RE = re.compile(r"^\s*--\s*(?P<reason>\S.*)$")

RANDOMNESS_RE = re.compile(
    r"""\b(?:
        std::random_device |
        std::mt19937(?:_64)? \s* \w* \s* [({] [^)}]* std::random_device |
        (?<![\w:])rand\s*\( |
        (?<![\w:])srand\s*\( |
        (?<![\w:])time\s*\(\s*(?:NULL|nullptr|0|&)| # time(NULL)-style wall clock
        gettimeofday\s*\( |
        clock_gettime\s*\( |
        (?<![\w:])localtime(?:_r)?\s*\( |
        (?<![\w:])gmtime(?:_r)?\s*\( |
        std::chrono::system_clock |
        high_resolution_clock
    )""",
    re.VERBOSE,
)

UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<"
)
# `for (… : expr)` — capture the range expression.
RANGE_FOR_RE = re.compile(r"\bfor\s*\(\s*[^;:]+:\s*(?P<range>[^)]+)\)")

SORT_CALL_RE = re.compile(
    r"\bstd::(?:stable_)?sort\s*\(|\bstd::(?:min|max)_element\s*\(|"
    r"\bstd::nth_element\s*\(|\bstd::partial_sort\s*\("
)
LAMBDA_PARAMS_RE = re.compile(r"\[[^\]]*\]\s*\((?P<params>[^)]*)\)")

RAW_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"recursive_timed_mutex|shared_timed_mutex|condition_variable"
    r"(?:_any)?)\b"
)

FLOAT_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*(?:=|\{|;|,)")
ACCUM_RE = re.compile(r"(?<![\w.])(\w+)\s*\+=")
LOOP_OPEN_RE = re.compile(r"\b(?:for|while)\s*\(")


@dataclass
class Diagnostic:
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


@dataclass
class Waiver:
    path: str
    line: int
    rule: str
    reason: str


@dataclass
class LintResult:
    diagnostics: list[Diagnostic] = field(default_factory=list)
    waivers: list[Waiver] = field(default_factory=list)


def strip_strings_and_comments(line: str) -> str:
    """Blanks out string/char literals and the trailing // comment so
    rule regexes never fire on prose. (Block comments spanning lines are
    not handled; the codebase uses // exclusively.)"""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break  # rest is comment
        if c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    out.append("  ")
                    i += 2
                    continue
                if line[i] == quote:
                    out.append(" ")
                    i += 1
                    break
                out.append(" ")
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def parse_waivers(lines: list[str], path: str) -> tuple[dict[int, set[str]], list[Waiver], list[Diagnostic]]:
    """Returns ({0-based line covered: rules waived}, waivers, syntax errors).

    A waiver covers its own line; a comment-only waiver additionally
    covers the first following non-comment line (so the explanation may
    continue over several comment lines before the code it waives).
    """
    covered: dict[int, set[str]] = {}
    waivers: list[Waiver] = []
    errors: list[Diagnostic] = []
    for idx, line in enumerate(lines):
        m = WAIVER_RE.search(line)
        if not m:
            continue
        rule = m.group("rule") or "unordered-iteration"
        if rule not in RULES:
            errors.append(Diagnostic(
                path, idx + 1, "waiver-syntax",
                f"unknown rule '{rule}' in waiver (rules: {', '.join(RULES)})"))
            continue
        reason_match = REASON_RE.match(m.group("rest"))
        if not reason_match:
            errors.append(Diagnostic(
                path, idx + 1, "waiver-syntax",
                "waiver without a reason; write "
                f"`// lint:allow({rule}) -- <why this is safe>`"))
            continue
        waivers.append(Waiver(path, idx + 1, rule, reason_match.group("reason").strip()))
        covered.setdefault(idx, set()).add(rule)
        if line.lstrip().startswith("//"):  # comment-only: cover next code line
            j = idx + 1
            while j < len(lines) and lines[j].lstrip().startswith("//"):
                j += 1
            if j < len(lines):
                covered.setdefault(j, set()).add(rule)
    return covered, waivers, errors


def unordered_decl_names(code: str) -> set[str]:
    """Names declared as unordered containers on this (statement) line.

    Walks past the balanced template argument list, then parses a
    `name[, name]*` declarator list that must terminate in `;`, `=` or
    `{` on the same line — which keeps function signatures and
    parameter lines (terminating in `(`, `,` or `)`) from leaking their
    identifiers into the per-file container set. Multi-line
    declarations are simply not tracked: the linter is a heuristic and
    prefers misses over false positives.
    """
    names: set[str] = set()
    for m in UNORDERED_DECL_RE.finditer(code):
        depth, i = 1, m.end()
        while i < len(code) and depth:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
            i += 1
        if depth:
            continue  # template args continue on the next line
        tail = code[i:]
        decl = re.match(
            r"[\s&*]*(?:const\s+)?"
            r"(?P<names>[A-Za-z_]\w*(?:\s*,\s*[A-Za-z_]\w*)*)\s*[;={]",
            tail)
        if decl:
            names.update(n.strip() for n in decl.group("names").split(","))
    return names


def in_gated_dir(rel_path: str) -> bool:
    parts = rel_path.replace(os.sep, "/").split("/")
    # Accept both `src/eval/...` and `eval/...` so the tool works whether
    # invoked on the repo root or on src/ directly.
    if parts and parts[0] == "src":
        parts = parts[1:]
    return bool(parts) and parts[0] in DETERMINISM_GATED_DIRS


def lint_file(path: str, rel_path: str, result: LintResult) -> None:
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            lines = f.read().splitlines()
    except OSError as e:
        raise SystemExit(f"genlink_lint: cannot read {path}: {e}")

    covered, waivers, waiver_errors = parse_waivers(lines, rel_path)
    result.waivers.extend(waivers)
    result.diagnostics.extend(waiver_errors)

    code_lines = [strip_strings_and_comments(l) for l in lines]

    unordered_vars: set[str] = set()
    for code in code_lines:
        unordered_vars.update(unordered_decl_names(code))

    float_vars: set[str] = set()
    for code in code_lines:
        float_vars.update(FLOAT_DECL_RE.findall(code))

    gated = in_gated_dir(rel_path)
    loop_depth_stack: list[bool] = []  # per open brace: opened by a loop?
    pending_loop = False

    def emit(idx: int, rule: str, message: str) -> None:
        if rule in covered.get(idx, ()):  # waived
            return
        result.diagnostics.append(Diagnostic(rel_path, idx + 1, rule, message))

    for idx, code in enumerate(code_lines):
        if not RANDOMNESS_EXEMPT.search(rel_path.replace(os.sep, "/")):
            m = RANDOMNESS_RE.search(code)
            if m:
                emit(idx, "randomness",
                     f"entropy/wall-clock source `{m.group(0).strip()}`; "
                     "use the seeded streams in common/random.h "
                     "(std::chrono::steady_clock is fine for durations)")

        m = RANGE_FOR_RE.search(code)
        if m:
            range_expr = m.group("range")
            range_ids = set(re.findall(r"\b([A-Za-z_]\w*)\b", range_expr))
            hits = range_ids & unordered_vars
            if hits:
                emit(idx, "unordered-iteration",
                     f"range-for over unordered container `{sorted(hits)[0]}`: "
                     "hash-order iteration; sort the keys, use std::map, or "
                     "waive with `// lint:ordered -- <reason>` if "
                     "order-insensitive")

        if SORT_CALL_RE.search(code):
            # The comparator lambda may sit on this or the next few lines.
            window = " ".join(code_lines[idx:idx + 4])
            lm = LAMBDA_PARAMS_RE.search(window)
            if lm and "*" in lm.group("params"):
                params = re.findall(r"(\w+)\s*(?:,|$)", lm.group("params"))
                body = window[lm.end():]
                for p in params:
                    if re.search(rf"(?<![\w.>]){re.escape(p)}\s*[<>]\s*\w", body) or \
                       re.search(rf"\w\s*[<>]\s*{re.escape(p)}(?![\w.])(?!\s*->)", body):
                        emit(idx, "pointer-sort",
                             f"comparator orders pointer `{p}` by its value "
                             "(allocation order, not data); compare the "
                             "pointees or a stable key")
                        break

        if not RAW_MUTEX_EXEMPT.search(rel_path.replace(os.sep, "/")):
            m = RAW_MUTEX_RE.search(code)
            if m:
                emit(idx, "raw-mutex",
                     f"`{m.group(0)}` outside common/ is invisible to "
                     "-Wthread-safety; use the annotated wrappers in "
                     "common/mutex.h (Mutex, CondVar, WriterPriorityMutex)")

        # float-accum needs loop tracking regardless of gating so the
        # brace bookkeeping stays consistent; only emit when gated.
        if LOOP_OPEN_RE.search(code):
            pending_loop = True
        for c in code:
            if c == "{":
                loop_depth_stack.append(pending_loop)
                pending_loop = False
            elif c == "}":
                if loop_depth_stack:
                    loop_depth_stack.pop()
        if gated and any(loop_depth_stack):
            am = ACCUM_RE.search(code)
            if am and am.group(1) in float_vars:
                emit(idx, "float-accum",
                     f"float accumulation `{am.group(1)} +=` inside a loop in "
                     "a determinism-gated layer; if the iteration order is "
                     "fixed, waive with "
                     "`// lint:allow(float-accum) -- <why order is fixed>`")


def collect_files(paths: list[str]) -> list[tuple[str, str]]:
    """Expands paths to (absolute, display) source-file pairs."""
    out: list[tuple[str, str]] = []
    for p in paths:
        if os.path.isfile(p):
            out.append((p, p))
        elif os.path.isdir(p):
            for root, dirs, files in os.walk(p):
                dirs.sort()
                for name in sorted(files):
                    if name.endswith(SOURCE_EXTENSIONS):
                        full = os.path.join(root, name)
                        out.append((full, os.path.relpath(full)))
        else:
            raise SystemExit(f"genlink_lint: no such file or directory: {p}")
    return out


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="genlink_lint",
        description="determinism & concurrency invariant linter "
                    "(see module docstring for the rules)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint (default: src)")
    parser.add_argument("--list-waivers", action="store_true",
                        help="print every waiver in scope and exit 0")
    try:
        args = parser.parse_args(argv)
    except SystemExit as e:
        # argparse exits 2 on usage error, 0 on --help; keep both.
        return int(e.code or 0)

    result = LintResult()
    try:
        for full, rel in collect_files(args.paths or ["src"]):
            lint_file(full, rel, result)
    except SystemExit as e:
        print(e, file=sys.stderr)
        return 2

    if args.list_waivers:
        for w in result.waivers:
            print(f"{w.path}:{w.line}: [{w.rule}] {w.reason}")
        print(f"{len(result.waivers)} waiver(s)")
        return 0

    for d in result.diagnostics:
        print(d)
    if result.diagnostics:
        print(f"genlink_lint: {len(result.diagnostics)} violation(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
