// Serving queries: the build-once / query-many lifecycle of the
// service API (api/matcher_index.h), the shape a production linking
// service has.
//
//   1. Build a MatcherIndex over the corpus ONCE (token blocking +
//      compiled value store). This is the expensive step.
//   2. Serve single-entity queries (MatchEntity) and parallel batches
//      (MatchBatch) against it — each query costs candidate lookup
//      plus interned-distance scoring, not a corpus rebuild.
//   3. Save the rule as a deployment artifact and load it back
//      (io/artifact.h), the way a learner hands a rule to a server.
//   4. Hot-swap an improved rule with WithRule: the corpus-side stores
//      are shared, only the new rule's unseen subtrees compile.

#include <cstdio>

#include "api/matcher_index.h"
#include "datasets/restaurant.h"
#include "io/artifact.h"
#include "rule/builder.h"

using namespace genlink;

int main() {
  // The corpus: the Restaurant deduplication dataset (864 records).
  MatchingTask task = GenerateRestaurant();

  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                           Prop("name").Lower().Tokenize())
                  .Compare("levenshtein", 3.0, Prop("address").Lower(),
                           Prop("address").Lower())
                  .End()
                  .Build();
  if (!rule.ok()) {
    std::fprintf(stderr, "rule: %s\n", rule.status().ToString().c_str());
    return 1;
  }

  // 1. Build once. The index is immutable and safe to query from any
  //    number of threads.
  auto index = MatcherIndex::Build(task.a, task.a, *rule, MatchOptions{});
  MatcherIndexStats stats = index->stats();
  std::printf("index: %zu entities, %zu blocking tokens, %zu value plans, "
              "built in %.3fs\n",
              stats.target_entities, stats.blocking_tokens, stats.value_plans,
              stats.build_seconds);

  // 2a. Single-query serving: an incoming record looking for its
  //     duplicates. Links come back best-first (score desc, id_b asc).
  size_t served = 0, with_matches = 0;
  for (size_t i = 0; i < task.a.size() && with_matches < 3; ++i) {
    auto links = index->MatchEntity(task.a.entity(i));
    ++served;
    if (links.empty()) continue;
    ++with_matches;
    std::printf("query %-8s -> %-8s (score %.2f, %zu link(s))\n",
                task.a.entity(i).id().c_str(), links[0].id_b.c_str(),
                links[0].score, links.size());
  }
  std::printf("served %zu single queries\n", served);

  // 2b. Batch serving: the whole corpus as one parallel chunked batch.
  auto batch_links = index->MatchBatch(task.a.entities());
  std::printf("batch over %zu entities: %zu links\n", task.a.size(),
              batch_links.size());
  if (batch_links.empty()) return 1;

  // 3. Deployment artifact round trip: what `genlink learn
  //    --save-artifact` writes and `genlink query --artifact` loads.
  RuleArtifact artifact;
  artifact.name = "restaurant-demo";
  artifact.rule = rule->Clone();
  auto loaded = ReadRuleArtifact(WriteRuleArtifact(artifact));
  if (!loaded.ok()) {
    std::fprintf(stderr, "artifact: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("artifact round trip ok (threshold %.2f)\n",
              loaded->options.threshold);

  // 4. Hot swap: a stricter rule compiles against the SAME corpus
  //    stores; a service would atomically publish the returned pointer
  //    while the old index keeps serving in-flight queries.
  auto strict = RuleBuilder()
                    .Aggregate("min")
                    .Compare("jaccard", 0.8, Prop("name").Lower().Tokenize(),
                             Prop("name").Lower().Tokenize())
                    .Compare("levenshtein", 1.0, Prop("address").Lower(),
                             Prop("address").Lower())
                    .End()
                    .Build();
  if (!strict.ok()) return 1;
  auto swapped = index->WithRule(*strict);
  std::printf("hot swap: %zu -> %zu links, swap compiled in %.4fs "
              "(%zu plans total, corpus shared)\n",
              batch_links.size(), swapped->MatchDataset().size(),
              swapped->stats().build_seconds, swapped->stats().value_plans);
  return 0;
}
