// Deduplicating noisy citation records (the paper's Cora scenario,
// Section 6.2). Demonstrates the value of data transformations: the same
// learner is run once with the full representation and once with
// transformations disabled, mirroring the paper's Figure 7 vs Figure 8
// comparison (F ~0.97 with transformations vs ~0.91 without).

#include <cstdio>

#include "datasets/cora.h"
#include "gp/genlink.h"
#include "rule/serialize.h"

using namespace genlink;

namespace {

double Learn(const MatchingTask& task, RepresentationMode mode,
             const char* label, std::string* rule_out) {
  Rng rng(7);
  auto folds = task.links.SplitFolds(2, rng);

  GenLinkConfig config;
  config.population_size = 200;
  config.max_iterations = 25;
  config.mode = mode;
  GenLink learner(task.Source(), task.Target(), config);
  auto result = learner.Learn(folds[0], &folds[1], rng);
  if (!result.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", label,
                 result.status().ToString().c_str());
    return 0.0;
  }
  const IterationStats& final_stats = result->trajectory.iterations.back();
  std::printf("%-22s train F1 %.3f   validation F1 %.3f   (%zu iterations)\n",
              label, final_stats.train_f1, final_stats.val_f1,
              final_stats.iteration);
  *rule_out = ToPrettySexpr(result->best_rule);
  return final_stats.val_f1;
}

}  // namespace

int main() {
  // A scaled-down Cora: noisy citations (typos, inconsistent case,
  // author initials, venue abbreviations, missing fields).
  CoraConfig config;
  config.scale = 0.4;
  MatchingTask task = GenerateCora(config);
  std::printf("cora-like task: %zu citations, %zu positive links\n\n",
              task.a.size(), task.links.positives().size());

  std::string rule_full, rule_plain;
  double f_full = Learn(task, RepresentationMode::kFull,
                        "full representation:", &rule_full);
  double f_plain = Learn(task, RepresentationMode::kNonlinear,
                         "without transformations:", &rule_plain);

  std::printf("\ntransformations improved the validation F-measure by %+.3f\n",
              f_full - f_plain);
  std::printf("\nlearned rule (full, cf. paper Figure 7):\n%s\n",
              rule_full.c_str());
  std::printf("\nlearned rule (no transformations, cf. Figure 8):\n%s\n",
              rule_plain.c_str());
  return 0;
}
