// Active learning of linkage rules (the extension the paper cites as
// [21], Isele et al., ICWE 2012): instead of labelling thousands of
// pairs up front, start from two labels and iteratively ask the "expert"
// (here: the generator's ground truth) to label only the candidate pair
// the current committee of learned rules disagrees on most
// (query-by-committee). Uses the library's ActiveLearner.

#include <cstdio>
#include <set>
#include <string>
#include <utility>

#include "datasets/restaurant.h"
#include "gp/active_learning.h"
#include "rule/serialize.h"

using namespace genlink;

int main() {
  RestaurantConfig data_config;
  data_config.scale = 0.5;
  MatchingTask task = GenerateRestaurant(data_config);

  // Ground-truth oracle standing in for the human expert.
  std::set<std::pair<std::string, std::string>> truth;
  for (const auto& link : task.links.positives()) {
    truth.insert({link.id_a, link.id_b});
  }
  Oracle oracle = [&truth](const CandidateLink& pair) {
    return truth.count({pair.id_a, pair.id_b}) > 0;
  };

  ActiveLearningConfig config;
  config.committee_size = 3;
  config.rounds = 8;
  config.learner.population_size = 80;
  config.learner.max_iterations = 8;
  ActiveLearner learner(task.Source(), task.Target(), config);

  auto pool = learner.BuildPool();
  std::printf("unlabelled candidate pool: %zu pairs\n\n", pool.size());

  // Two seed labels: one match, one non-match.
  ReferenceLinkSet seed;
  seed.AddPositive(task.links.positives()[0].id_a,
                   task.links.positives()[0].id_b);
  seed.AddNegative(task.links.negatives()[0].id_a,
                   task.links.negatives()[0].id_b);

  Rng rng(3);
  auto result = learner.Run(seed, pool, oracle, &task.links, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "active learning failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("%8s  %8s  %14s\n", "labels", "val F1", "disagreement");
  for (const auto& round : result->rounds) {
    std::printf("%8zu  %8.3f  %14.2f\n", round.num_labels, round.val_f1,
                round.query_disagreement);
  }

  std::printf("\nfinal rule after %zu labels:\n%s\n", result->labels.size(),
              ToPrettySexpr(result->best_rule).c_str());
  std::printf(
      "\nwith ~%zu targeted labels the committee approaches the quality that\n"
      "batch training needs hundreds of labels for.\n",
      result->labels.size());
  return 0;
}
