// Writing a linkage rule by hand: loading datasets from CSV, building
// the paper's Figure 2 rule with the fluent builder API, serializing it,
// parsing it back, and executing it. Linkage rules are operator trees
// that humans can read and edit (one of the paper's design goals).

#include <cstdio>

#include "io/csv.h"
#include "matcher/matcher.h"
#include "rule/builder.h"
#include "rule/parse.h"
#include "rule/serialize.h"

using namespace genlink;

namespace {

// Two small city datasets in different schemata (cf. paper Figure 2).
constexpr const char* kSourceCsv =
    "id,label,point\n"
    "s1,Berlin,52.5200 13.4050\n"
    "s2,Hamburg,53.5511 9.9937\n"
    "s3,Munich,48.1351 11.5820\n"
    "s4,Cologne,50.9375 6.9603\n";

constexpr const char* kTargetCsv =
    "id,label,coord\n"
    "t1,BERLIN,52.5201 13.4049\n"
    "t2,hamburg,53.5510 9.9940\n"
    "t3,Muenchen,48.1352 11.5821\n"
    "t4,Dresden,51.0504 13.7373\n";

}  // namespace

int main() {
  // Load the datasets.
  CsvDatasetOptions options;
  options.id_column = "id";
  auto source = ReadCsvDataset(kSourceCsv, "cities-a", options);
  auto target = ReadCsvDataset(kTargetCsv, "cities-b", options);
  if (!source.ok() || !target.ok()) {
    std::fprintf(stderr, "CSV error\n");
    return 1;
  }

  // Build the Figure 2 rule: both the normalized label similarity AND
  // the geographic proximity must hold (min aggregation).
  auto rule = RuleBuilder()
                  .Aggregate("min")
                  .Compare("levenshtein", 1.0, Prop("label").Lower(),
                           Prop("label").Lower())
                  .Compare("geographic", 500.0, Prop("point"), Prop("coord"))
                  .End()
                  .Build();
  if (!rule.ok()) {
    std::fprintf(stderr, "rule error: %s\n", rule.status().ToString().c_str());
    return 1;
  }

  // Rules serialize to a readable s-expression and parse back.
  std::string sexpr = ToPrettySexpr(*rule);
  std::printf("hand-written rule:\n%s\n\n", sexpr.c_str());
  auto reparsed = ParseRule(sexpr);
  std::printf("round-trips through the parser: %s\n\n",
              reparsed.ok() && reparsed->StructuralHash() == rule->StructuralHash()
                  ? "yes"
                  : "NO");

  // Execute: Berlin/BERLIN and Hamburg/hamburg match (case is
  // normalized, coordinates agree); Munich/Muenchen fails the edit
  // distance; Cologne/Dresden share nothing.
  auto links = GenerateLinks(*rule, *source, *target);
  std::printf("generated links:\n");
  for (const auto& link : links) {
    std::printf("  %s <-> %s (score %.3f)\n", link.id_a.c_str(),
                link.id_b.c_str(), link.score);
  }
  std::printf("(expected: s1<->t1 and s2<->t2 only)\n");
  return 0;
}
