// Quickstart: learn a linkage rule for a restaurant deduplication task
// in ~30 lines of API usage.
//
//   1. Get a matching task (two datasets + labelled reference links).
//      Here we use the built-in Restaurant generator; in a real
//      application you would load CSV or N-Triples files (see
//      custom_rule.cpp).
//   2. Split the reference links into a training and a validation fold.
//   3. Run the GenLink learner.
//   4. Inspect the learned rule and its quality.
//   5. Deploy the rule into a query-serving MatcherIndex (see
//      serve_queries.cpp for the full service lifecycle).

#include <cstdio>

#include "api/matcher_index.h"
#include "datasets/restaurant.h"
#include "eval/metrics.h"
#include "gp/genlink.h"
#include "rule/serialize.h"

using namespace genlink;

int main() {
  // 1. A deduplication task: 864 restaurant records, 112 known duplicate
  //    pairs (plus generated negatives).
  MatchingTask task = GenerateRestaurant();
  std::printf("dataset: %zu entities, %zu positive / %zu negative links\n",
              task.a.size(), task.links.positives().size(),
              task.links.negatives().size());

  // 2. 2-fold split: train on one half of the labels, validate on the
  //    other.
  Rng rng(42);
  auto folds = task.links.SplitFolds(2, rng);

  // 3. Learn. The defaults are the paper's parameters (population 500,
  //    50 iterations); we shrink them for a fast demo.
  GenLinkConfig config;
  config.population_size = 150;
  config.max_iterations = 20;
  GenLink learner(task.Source(), task.Target(), config);
  auto result = learner.Learn(folds[0], &folds[1], rng);
  if (!result.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Report.
  const IterationStats& final_stats = result->trajectory.iterations.back();
  std::printf("\nlearned in %zu iterations (%.1fs)\n", final_stats.iteration,
              final_stats.seconds);
  std::printf("training F-measure:   %.3f\n", final_stats.train_f1);
  std::printf("validation F-measure: %.3f\n", final_stats.val_f1);
  std::printf("\nlearned linkage rule:\n%s\n",
              ToPrettySexpr(result->best_rule).c_str());

  // 5. Deploy: build the serving index once, then answer queries
  //    against it. A long-running service keeps the index and calls
  //    MatchEntity per incoming record.
  auto index =
      MatcherIndex::Build(task.a, task.a, result->best_rule, MatchOptions{});
  auto links = index->MatchEntity(task.a.entity(0));
  std::string best = links.empty() ? "" : " (best: " + links[0].id_b + ")";
  std::printf("deployed: query %s has %zu duplicate candidate(s)%s\n",
              task.a.entity(0).id().c_str(), links.size(), best.c_str());
  return 0;
}
