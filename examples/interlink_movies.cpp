// Interlinking two movie datasets with different schemata (the paper's
// LinkedMDB scenario): learn a rule from reference links, then execute
// it over the *full* datasets with the token-blocking matcher and score
// the generated links against the ground truth — the complete Silk-style
// pipeline from labels to links.

#include <cstdio>
#include <set>
#include <string>
#include <utility>

#include "datasets/linkedmdb.h"
#include "gp/genlink.h"
#include "matcher/matcher.h"
#include "rule/serialize.h"

using namespace genlink;

int main() {
  // Movies in two schemata (label/initial_release_date/director_name vs
  // name/releaseDate/director), including same-title/different-year
  // remakes that force the rule to also compare the release date.
  MatchingTask task = GenerateLinkedMdb();
  std::printf("source: %zu movies (%zu properties)\n", task.a.size(),
              task.a.schema().NumProperties());
  std::printf("target: %zu movies (%zu properties)\n", task.b.size(),
              task.b.schema().NumProperties());

  // Learn from all reference links.
  GenLinkConfig config;
  config.population_size = 200;
  config.max_iterations = 25;
  GenLink learner(task.Source(), task.Target(), config);
  Rng rng(11);
  auto result = learner.Learn(task.links, nullptr, rng);
  if (!result.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("\nlearned rule:\n%s\n\n",
              ToPrettySexpr(result->best_rule).c_str());

  // Execute over the full cross product (with token blocking).
  auto links = GenerateLinks(result->best_rule, task.a, task.b);
  std::printf("generated %zu links\n", links.size());

  // Score against the known positives.
  std::set<std::pair<std::string, std::string>> truth;
  for (const auto& ref : task.links.positives()) {
    truth.insert({ref.id_a, ref.id_b});
  }
  size_t correct = 0;
  for (const auto& link : links) {
    if (truth.count({link.id_a, link.id_b})) ++correct;
  }
  double precision = links.empty() ? 0.0
                                   : static_cast<double>(correct) /
                                         static_cast<double>(links.size());
  double recall =
      static_cast<double>(correct) / static_cast<double>(truth.size());
  std::printf("against the reference links: precision %.3f, recall %.3f\n",
              precision, recall);

  // Show a few generated links.
  std::printf("\nsample links:\n");
  for (size_t i = 0; i < links.size() && i < 5; ++i) {
    std::printf("  %s <-> %s (score %.3f)\n", links[i].id_a.c_str(),
                links[i].id_b.c_str(), links[i].score);
  }
  return 0;
}
